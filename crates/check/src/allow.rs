//! Allowlist for deliberate lint violations.
//!
//! Format (`lint.allow` at the workspace root): one entry per line, `|`-
//! separated fields, in one of two forms:
//!
//! ```text
//! # explicit lint field (the original form)
//! no-float-eq | crates/tensor/src/matrix.rs | a_ip == 0.0 | bit-exact sparsity skip
//! # path-first form; the snippet may carry an optional `<lint-id>:` scope
//! crates/core/src/train.rs | panic-reachability:rows[r] | bounds pre-checked by loader
//! crates/core/src/tsne.rs  | panic-reachability:*       | dense index math, audited
//! crates/data/src/pair.rs  | left.id                    | any lint on this snippet
//! ```
//!
//! In the path-first form the prefix before the first `:` is treated as a
//! lint scope only when it names a known lint id ([`crate::lints::LINT_IDS`])
//! — so snippets containing `::` keep working unscoped. A snippet of `*`
//! matches every line of the file (blanket allows need a lint scope so they
//! stay narrow). Explicit-lint entries never split their snippet.
//!
//! Snippet matching (rather than line numbers) keeps entries stable under
//! unrelated edits; the reason is mandatory so every suppression documents
//! *why* the rule does not apply. Entries that match nothing are reported so
//! the file cannot rot — and when an entry only went unused because an
//! earlier entry claimed its finding first, the report names the lint id and
//! file of the finding that last matched it, so the redundancy is visible.

use crate::lints::{Finding, LINT_IDS};

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Lint id this entry suppresses; `None` suppresses any lint.
    pub lint: Option<String>,
    /// Workspace-relative path the finding must be in.
    pub path: String,
    /// Substring the finding's source line must contain; `*` matches any
    /// line of the file.
    pub snippet: String,
    /// Why this violation is deliberate (mandatory).
    pub reason: String,
    /// Source line in the allowlist file (for diagnostics).
    pub line: usize,
}

/// An entry that suppressed nothing, with the evidence `apply` gathered.
#[derive(Debug, Clone)]
pub struct StaleEntry {
    /// The unused entry.
    pub entry: AllowEntry,
    /// When the entry *would* have matched a finding that an earlier entry
    /// claimed first: (claiming entry's `lint.allow` line, finding lint id,
    /// finding path, finding line).
    pub shadowed_by: Option<(usize, String, String, usize)>,
}

impl AllowEntry {
    /// True when this entry suppresses `f`.
    pub fn matches(&self, f: &Finding) -> bool {
        self.lint.as_deref().is_none_or(|l| l == f.lint)
            && self.path == f.path
            && (self.snippet == "*" || f.snippet.contains(&self.snippet))
    }

    /// The lint scope for diagnostics: the lint id, or `any lint`.
    pub fn scope(&self) -> &str {
        self.lint.as_deref().unwrap_or("any lint")
    }
}

/// Parses allowlist text. Returns `Err` with a description for malformed
/// lines (wrong field count, empty field, unknown lint id, unscoped `*`).
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split('|').map(str::trim).collect();
        if fields.iter().any(|f| f.is_empty()) {
            return Err(format!(
                "lint.allow:{line}: empty field; every entry needs a path, a snippet, and a \
                 reason (plus an optional lint id)"
            ));
        }
        let entry = match fields.as_slice() {
            [lint, path, snippet, reason] => {
                if !LINT_IDS.contains(lint) {
                    return Err(format!(
                        "lint.allow:{line}: unknown lint id `{lint}`; known ids: {}",
                        LINT_IDS.join(", ")
                    ));
                }
                AllowEntry {
                    lint: Some(lint.to_string()),
                    path: path.to_string(),
                    snippet: snippet.to_string(),
                    reason: reason.to_string(),
                    line,
                }
            }
            [path, snippet, reason] => {
                // `<lint-id>:<snippet>` scopes the entry; an unknown prefix
                // is part of the snippet (it may contain `::`).
                let (lint, snippet) = match snippet.split_once(':') {
                    Some((head, rest)) if LINT_IDS.contains(&head.trim()) => {
                        (Some(head.trim().to_string()), rest.trim().to_string())
                    }
                    _ => (None, snippet.to_string()),
                };
                if snippet.is_empty() {
                    return Err(format!("lint.allow:{line}: empty snippet after the lint scope"));
                }
                AllowEntry {
                    lint,
                    path: path.to_string(),
                    snippet,
                    reason: reason.to_string(),
                    line,
                }
            }
            other => {
                return Err(format!(
                    "lint.allow:{line}: expected 3 fields (path | snippet | reason) or 4 \
                     (lint | path | snippet | reason), got {}",
                    other.len()
                ));
            }
        };
        if entry.snippet == "*" && entry.lint.is_none() {
            return Err(format!(
                "lint.allow:{line}: a `*` snippet suppresses every finding in the file; scope \
                 it to one lint (`<lint-id>:*`)"
            ));
        }
        entries.push(entry);
    }
    Ok(entries)
}

/// Splits findings into (kept, suppressed) — first matching entry wins —
/// and returns the entries that suppressed nothing, each annotated with the
/// finding an earlier entry shadowed it on, when there is one.
pub fn apply(
    findings: Vec<Finding>,
    entries: &[AllowEntry],
) -> (Vec<Finding>, Vec<Finding>, Vec<StaleEntry>) {
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    let mut used = vec![false; entries.len()];
    let mut shadow: Vec<Option<(usize, String, String, usize)>> = vec![None; entries.len()];
    for f in findings {
        let matching: Vec<usize> = (0..entries.len()).filter(|&i| entries[i].matches(&f)).collect();
        match matching.split_first() {
            Some((&first, rest)) => {
                used[first] = true;
                for &i in rest {
                    shadow[i] =
                        Some((entries[first].line, f.lint.to_string(), f.path.clone(), f.line));
                }
                suppressed.push(f);
            }
            None => kept.push(f),
        }
    }
    let stale = entries
        .iter()
        .zip(used)
        .zip(shadow)
        .filter(|((_, u), _)| !u)
        .map(|((e, _), s)| StaleEntry { entry: e.clone(), shadowed_by: s })
        .collect();
    (kept, suppressed, stale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::lint_file;

    const ENTRY: &str =
        "# a comment\n\nno-panic | crates/core/src/foo.rs | x.unwrap() | documented invariant\n";

    fn findings() -> Vec<Finding> {
        lint_file("crates/core/src/foo.rs", "fn f(x: Option<u8>) -> u8 { x.unwrap() }")
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let entries = parse(ENTRY).expect("entry parses");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].lint.as_deref(), Some("no-panic"));
        assert_eq!(entries[0].reason, "documented invariant");
    }

    #[test]
    fn parse_rejects_missing_reason_and_unknown_lints() {
        assert!(parse("no-panic | a.rs | x.unwrap() | \n").is_err());
        assert!(parse("no-panics | a.rs | x.unwrap() | typo in lint id\n").is_err());
        assert!(parse("a | b | c | d | e\n").is_err(), "five fields is malformed");
    }

    #[test]
    fn three_field_form_parses_with_optional_lint_scope() {
        let entries = parse(
            "crates/core/src/foo.rs | no-panic:x.unwrap() | scoped\n\
             crates/core/src/foo.rs | x.unwrap() | unscoped\n\
             crates/core/src/foo.rs | Vec::new | snippet with path colons\n",
        )
        .expect("entries parse");
        assert_eq!(entries[0].lint.as_deref(), Some("no-panic"));
        assert_eq!(entries[0].snippet, "x.unwrap()");
        assert_eq!(entries[1].lint, None);
        assert_eq!(entries[2].lint, None, "`Vec` is not a lint id");
        assert_eq!(entries[2].snippet, "Vec::new");
    }

    #[test]
    fn wildcard_snippet_requires_a_lint_scope() {
        assert!(parse("crates/core/src/foo.rs | * | too broad\n").is_err());
        let entries = parse("crates/core/src/foo.rs | panic-reachability:* | audited file\n")
            .expect("scoped wildcard parses");
        assert_eq!(entries[0].snippet, "*");
        assert_eq!(entries[0].lint.as_deref(), Some("panic-reachability"));
    }

    #[test]
    fn matching_entry_suppresses_finding() {
        let entries = parse(ENTRY).expect("entry parses");
        let (kept, suppressed, stale) = apply(findings(), &entries);
        assert!(kept.is_empty());
        assert_eq!(suppressed.len(), 1);
        assert!(stale.is_empty());
    }

    #[test]
    fn unscoped_and_wildcard_entries_suppress_too() {
        for text in [
            "crates/core/src/foo.rs | x.unwrap() | unscoped\n",
            "crates/core/src/foo.rs | no-panic:* | blanket\n",
        ] {
            let entries = parse(text).expect("entry parses");
            let (kept, suppressed, _) = apply(findings(), &entries);
            assert!(kept.is_empty(), "{text}");
            assert_eq!(suppressed.len(), 1, "{text}");
        }
    }

    #[test]
    fn wrong_path_or_lint_does_not_suppress() {
        let entries = parse("no-panic | crates/core/src/other.rs | x.unwrap() | wrong file\n")
            .expect("entry parses");
        let (kept, suppressed, stale) = apply(findings(), &entries);
        assert_eq!(kept.len(), 1);
        assert!(suppressed.is_empty());
        assert_eq!(stale.len(), 1, "stale entry must be reported");
        assert!(stale[0].shadowed_by.is_none());
    }

    #[test]
    fn shadowed_entries_name_the_finding_they_last_matched() {
        let entries = parse(
            "no-panic | crates/core/src/foo.rs | x.unwrap() | first wins\n\
             crates/core/src/foo.rs | no-panic:unwrap | redundant duplicate\n",
        )
        .expect("entries parse");
        let (kept, _, stale) = apply(findings(), &entries);
        assert!(kept.is_empty());
        assert_eq!(stale.len(), 1);
        let (by_line, lint, path, line) =
            stale[0].shadowed_by.clone().expect("duplicate is shadowed, not plain-stale");
        assert_eq!(by_line, 1, "claimed by the entry on lint.allow line 1");
        assert_eq!(lint, "no-panic");
        assert_eq!(path, "crates/core/src/foo.rs");
        assert!(line >= 1);
    }
}
