//! The project lints.
//!
//! Each lint operates on the token stream from [`crate::lexer`] plus the
//! file's workspace-relative path, which determines scope:
//!
//! | id                    | rule | scope |
//! |-----------------------|------|-------|
//! | `no-panic`            | no `.unwrap()` / `.expect(..)` / `panic!` | library sources (`crates/*/src`, excluding `src/bin`), outside `#[cfg(test)]` |
//! | `no-thread-spawn`     | no `thread::{spawn,scope,Builder}` | everywhere except `crates/tensor/src/parallel.rs` (the PR 1 determinism boundary) |
//! | `no-float-eq`         | no `==` / `!=` against a float literal | library sources, outside `#[cfg(test)]` |
//! | `hashmap-order`       | no iteration over `HashMap`-typed bindings | library sources, outside `#[cfg(test)]` |
//! | `no-clock-in-compute` | no `Instant::now` / `SystemTime` / `thread_rng` / `from_entropy` | deterministic compute paths: `crates/tensor/src`, `crates/core/src/model.rs` |
//!
//! Deliberate violations are suppressed through the allowlist
//! ([`crate::allow`]), never by editing the lint.

use crate::lexer::{lex, TokKind, Token};

/// Every lint id the tool can emit: the five token lints in this module
/// plus the three call-graph passes in [`crate::passes`]. The allowlist
/// parser ([`crate::allow`]) recognizes `<lint-id>:` snippet scopes against
/// this list and rejects entries naming a lint that does not exist.
pub const LINT_IDS: &[&str] = &[
    "no-panic",
    "no-thread-spawn",
    "no-float-eq",
    "hashmap-order",
    "no-clock-in-compute",
    "panic-reachability",
    "lock-across-dispatch",
    "nondeterministic-reduction",
];

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Lint id (`no-panic`, ...).
    pub lint: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// The full source line, used for allowlist snippet matching.
    pub snippet: String,
}

/// Where a file sits in the workspace, deciding which lints apply.
struct Scope {
    /// `crates/<name>/src/**` excluding `src/bin/**`: library code.
    library: bool,
    /// `crates/tensor/src/**` or `crates/core/src/model.rs`: code whose
    /// outputs must be a pure function of inputs + seed.
    deterministic_compute: bool,
    /// The one file allowed to touch `std::thread`.
    parallel_runtime: bool,
}

impl Scope {
    fn of(path: &str) -> Self {
        let p = path.replace('\\', "/");
        let library = p.starts_with("crates/")
            && p.contains("/src/")
            && !p.contains("/src/bin/")
            && p.ends_with(".rs");
        let deterministic_compute =
            p.starts_with("crates/tensor/src/") || p == "crates/core/src/model.rs";
        let parallel_runtime = p == "crates/tensor/src/parallel.rs";
        Self { library, deterministic_compute, parallel_runtime }
    }
}

/// Runs every applicable lint over one file. `path` must be
/// workspace-relative with forward slashes (e.g. `crates/core/src/model.rs`).
pub fn lint_file(path: &str, src: &str) -> Vec<Finding> {
    let toks = lex(src);
    let scope = Scope::of(path);
    let test_mask = test_token_mask(&toks);
    let lines: Vec<&str> = src.lines().collect();
    let mut findings = Vec::new();

    let mut push = |lint: &'static str, line: usize, message: String| {
        let snippet = lines.get(line.saturating_sub(1)).map_or("", |l| l.trim()).to_string();
        findings.push(Finding { lint, path: path.to_string(), line, message, snippet });
    };

    for (i, t) in toks.iter().enumerate() {
        let in_test = test_mask[i];

        // L1: no-panic.
        if scope.library && !in_test {
            if t.is_punct(".")
                && matches!(toks.get(i + 1), Some(n) if n.is_ident("unwrap"))
                && matches!(toks.get(i + 2), Some(n) if n.is_punct("("))
            {
                push(
                    "no-panic",
                    t.line,
                    "`.unwrap()` in library code; return a Result, restructure, or \
                     allowlist with a reason"
                        .to_string(),
                );
            }
            if t.is_punct(".")
                && matches!(toks.get(i + 1), Some(n) if n.is_ident("expect"))
                && matches!(toks.get(i + 2), Some(n) if n.is_punct("("))
            {
                push(
                    "no-panic",
                    t.line,
                    "`.expect(..)` in library code; return a Result or allowlist the \
                     documented invariant"
                        .to_string(),
                );
            }
            if t.is_ident("panic") && matches!(toks.get(i + 1), Some(n) if n.is_punct("!")) {
                push(
                    "no-panic",
                    t.line,
                    "`panic!` in library code; return a Result or allowlist with a reason"
                        .to_string(),
                );
            }
        }

        // L2: no-thread-spawn.
        if !scope.parallel_runtime
            && t.is_ident("thread")
            && matches!(toks.get(i + 1), Some(n) if n.is_punct("::"))
            && matches!(
                toks.get(i + 2),
                Some(n) if n.is_ident("spawn") || n.is_ident("scope") || n.is_ident("Builder")
            )
        {
            let what = &toks[i + 2].text;
            push(
                "no-thread-spawn",
                t.line,
                format!(
                    "`thread::{what}` outside crates/tensor/src/parallel.rs breaks the \
                     bit-identical determinism boundary; dispatch through \
                     adamel_tensor::parallel instead"
                ),
            );
        }

        // L3: no-float-eq.
        if scope.library
            && !in_test
            && (t.is_punct("==") || t.is_punct("!="))
            && (matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Float)
                || i.checked_sub(1)
                    .and_then(|p| toks.get(p))
                    .is_some_and(|p| p.kind == TokKind::Float))
        {
            push(
                "no-float-eq",
                t.line,
                format!(
                    "float `{}` comparison; use an ordered comparison, an epsilon, or \
                     allowlist a deliberate bit-exact check",
                    t.text
                ),
            );
        }

        // L5: no-clock-in-compute.
        if scope.deterministic_compute && !in_test {
            let nondet = (t.is_ident("Instant")
                && matches!(toks.get(i + 1), Some(n) if n.is_punct("::"))
                && matches!(toks.get(i + 2), Some(n) if n.is_ident("now")))
                || t.is_ident("SystemTime")
                || t.is_ident("thread_rng")
                || t.is_ident("from_entropy");
            if nondet {
                push(
                    "no-clock-in-compute",
                    t.line,
                    format!(
                        "`{}` in a deterministic compute path; pass timing/seeding in from \
                         the caller instead",
                        t.text
                    ),
                );
            }
        }
    }

    // L4: hashmap-order — needs a per-file symbol pass first.
    if scope.library {
        findings.extend(hashmap_order(path, &toks, &test_mask, &lines));
    }

    findings
}

/// L4: flags iteration over bindings/fields declared with a `HashMap` type
/// in the same file. Iteration order of `HashMap` is randomized per process,
/// so anything order-sensitive must sort first (and allowlist) or use
/// `BTreeMap`.
fn hashmap_order(path: &str, toks: &[Token], test_mask: &[bool], lines: &[&str]) -> Vec<Finding> {
    // Pass 1: names declared as HashMap — `name: HashMap<..>` (fields, let
    // annotations, params) or `name = HashMap::new()`.
    let mut names: Vec<&str> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let declares = matches!(toks.get(i + 1), Some(n) if n.is_punct(":") || n.is_punct("="))
            && matches!(toks.get(i + 2), Some(n) if n.is_ident("HashMap"));
        if declares && !names.contains(&t.text.as_str()) {
            names.push(&t.text);
        }
    }
    if names.is_empty() {
        return Vec::new();
    }

    const ITERATORS: &[&str] =
        &["iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "drain"];
    let mut findings = Vec::new();
    let mut push = |line: usize, name: &str, how: &str| {
        let snippet = lines.get(line.saturating_sub(1)).map_or("", |l| l.trim()).to_string();
        findings.push(Finding {
            lint: "hashmap-order",
            path: path.to_string(),
            line,
            message: format!(
                "{how} over `HashMap` binding `{name}`: iteration order is nondeterministic; \
                 sort the results (and allowlist) or switch to BTreeMap"
            ),
            snippet,
        });
    };

    for (i, t) in toks.iter().enumerate() {
        if test_mask[i] || t.kind != TokKind::Ident || !names.contains(&t.text.as_str()) {
            continue;
        }
        // `name.iter()` etc.
        if matches!(toks.get(i + 1), Some(n) if n.is_punct("."))
            && matches!(toks.get(i + 2), Some(n) if ITERATORS.contains(&n.text.as_str()))
            && matches!(toks.get(i + 3), Some(n) if n.is_punct("("))
        {
            push(t.line, &t.text, format!("`.{}()`", toks[i + 2].text).as_str());
            continue;
        }
        // `for .. in [&[mut]] [self.]name {` — scan back for `in` within the
        // loop header.
        let mut back = i;
        let mut saw_in = false;
        while back > 0 {
            back -= 1;
            let b = &toks[back];
            if b.is_ident("in") {
                saw_in = true;
                break;
            }
            let header_part = b.is_punct("&")
                || b.is_ident("mut")
                || b.is_ident("self")
                || b.is_punct(".")
                || b.is_punct("(")
                || b.is_punct(")");
            if !header_part {
                break;
            }
        }
        if saw_in && matches!(toks.get(i + 1), Some(n) if n.is_punct("{") || n.is_punct(".")) {
            // `for x in name {` or `for x in name.iter() {` (latter already
            // caught above; skip double report for `.`).
            if toks.get(i + 1).is_some_and(|n| n.is_punct("{")) {
                push(t.line, &t.text, "`for` loop");
            }
        }
    }
    findings
}

/// Marks every token that belongs to a `#[cfg(test)]` or `#[test]` item,
/// including the attribute itself and the item's full brace block.
fn test_token_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        // Find the attribute's closing `]` (brackets can nest:
        // `#[cfg(any(test, feature = "x"))]`).
        let attr_start = i;
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut attr_tokens: Vec<&Token> = Vec::new();
        while j < toks.len() && depth > 0 {
            if toks[j].is_punct("[") {
                depth += 1;
            } else if toks[j].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            attr_tokens.push(&toks[j]);
            j += 1;
        }
        if j >= toks.len() {
            break;
        }
        let is_test_attr = match attr_tokens.first() {
            Some(t) if t.is_ident("test") => attr_tokens.len() == 1,
            Some(t) if t.is_ident("cfg") => attr_tokens.iter().any(|t| t.is_ident("test")),
            _ => false,
        };
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // The guarded item runs from the attribute through either the
        // matching `}` of its first brace block, or a `;` reached first
        // (e.g. `#[cfg(test)] use foo;`). Intervening attributes are part
        // of the item.
        let mut k = j + 1;
        let mut end = toks.len().saturating_sub(1);
        while k < toks.len() {
            if toks[k].is_punct(";") {
                end = k;
                break;
            }
            if toks[k].is_punct("{") {
                let mut bdepth = 1usize;
                let mut m = k + 1;
                while m < toks.len() && bdepth > 0 {
                    if toks[m].is_punct("{") {
                        bdepth += 1;
                    } else if toks[m].is_punct("}") {
                        bdepth -= 1;
                    }
                    m += 1;
                }
                end = m.saturating_sub(1);
                break;
            }
            k += 1;
        }
        for slot in mask.iter_mut().take(end + 1).skip(attr_start) {
            *slot = true;
        }
        i = end + 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/core/src/foo.rs";

    fn lint_ids(path: &str, src: &str) -> Vec<&'static str> {
        lint_file(path, src).into_iter().map(|f| f.lint).collect()
    }

    // ---- L1: no-panic ----

    #[test]
    fn l1_flags_unwrap_expect_panic_in_library_code() {
        assert_eq!(lint_ids(LIB, "fn f(x: Option<u8>) -> u8 { x.unwrap() }"), vec!["no-panic"]);
        assert_eq!(
            lint_ids(LIB, "fn f(x: Option<u8>) -> u8 { x.expect(\"m\") }"),
            vec!["no-panic"]
        );
        assert_eq!(lint_ids(LIB, "fn f() { panic!(\"boom\"); }"), vec!["no-panic"]);
    }

    #[test]
    fn l1_ignores_test_code_comments_strings_and_bins() {
        let tested = "#[cfg(test)]\nmod tests {\n fn f(x: Option<u8>) { x.unwrap(); }\n}";
        assert!(lint_ids(LIB, tested).is_empty());
        let test_fn = "#[test]\nfn t() { Some(1).unwrap(); }";
        assert!(lint_ids(LIB, test_fn).is_empty());
        assert!(lint_ids(LIB, "// x.unwrap()\nfn f() { let m = \"panic!\"; }").is_empty());
        assert!(
            lint_ids("crates/bench/src/bin/tool.rs", "fn f() { None::<u8>.unwrap(); }").is_empty()
        );
        // unwrap_or and friends are fine.
        assert!(lint_ids(LIB, "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }").is_empty());
    }

    #[test]
    fn l1_code_after_test_mod_is_still_linted() {
        let src = "#[cfg(test)]\nmod tests { fn t() {} }\nfn f(x: Option<u8>) { x.unwrap(); }";
        assert_eq!(lint_ids(LIB, src), vec!["no-panic"]);
    }

    // ---- L2: no-thread-spawn ----

    #[test]
    fn l2_flags_thread_spawn_and_scope_everywhere() {
        assert_eq!(lint_ids(LIB, "fn f() { std::thread::spawn(|| {}); }"), vec!["no-thread-spawn"]);
        assert_eq!(
            lint_ids("crates/text/src/x.rs", "fn f() { thread::scope(|s| {}); }"),
            vec!["no-thread-spawn"]
        );
        // Even inside test code: the determinism boundary is structural.
        assert_eq!(
            lint_ids(LIB, "#[test]\nfn t() { std::thread::spawn(|| {}); }"),
            vec!["no-thread-spawn"]
        );
    }

    #[test]
    fn l2_exempts_the_parallel_runtime() {
        assert!(lint_ids(
            "crates/tensor/src/parallel.rs",
            "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }"
        )
        .is_empty());
    }

    // ---- L3: no-float-eq ----

    #[test]
    fn l3_flags_float_literal_comparisons() {
        assert_eq!(lint_ids(LIB, "fn f(x: f32) -> bool { x == 0.0 }"), vec!["no-float-eq"]);
        assert_eq!(lint_ids(LIB, "fn f(x: f32) -> bool { 1.5 != x }"), vec!["no-float-eq"]);
        assert_eq!(lint_ids(LIB, "fn f(x: f64) -> bool { x == 1e-7 }"), vec!["no-float-eq"]);
    }

    #[test]
    fn l3_ignores_int_comparisons_ordered_ops_and_tests() {
        assert!(lint_ids(LIB, "fn f(x: u8) -> bool { x == 0 }").is_empty());
        assert!(lint_ids(LIB, "fn f(x: f32) -> bool { x <= 0.0 }").is_empty());
        assert!(lint_ids(LIB, "#[test]\nfn t() { assert!(0.1 == 0.1); }").is_empty());
    }

    // ---- L4: hashmap-order ----

    #[test]
    fn l4_flags_iteration_over_hashmap_bindings() {
        let field = "use std::collections::HashMap;\nstruct S { m: HashMap<u8, u8> }\n\
                     impl S { fn f(&self) -> usize { self.m.iter().count() } }";
        assert_eq!(lint_ids("crates/text/src/tfidf.rs", field), vec!["hashmap-order"]);
        let local = "use std::collections::HashMap;\nfn f() { let m: HashMap<u8, u8> = \
                     HashMap::new(); for (k, v) in &m { let _ = (k, v); } }";
        assert_eq!(lint_ids("crates/text/src/tokenize.rs", local), vec!["hashmap-order"]);
        let keys = "use std::collections::HashMap;\nfn f(m: HashMap<u8, u8>) { \
                    for k in m.keys() { let _ = k; } }";
        assert_eq!(lint_ids(LIB, keys), vec!["hashmap-order"]);
    }

    #[test]
    fn l4_allows_lookups_and_btreemap() {
        let lookup = "use std::collections::HashMap;\nfn f(m: &HashMap<u8, u8>) -> Option<&u8> \
                      { m.get(&1) }";
        assert!(lint_ids(LIB, lookup).is_empty());
        let btree = "use std::collections::BTreeMap;\nstruct S { m: BTreeMap<u8, u8> }\n\
                     impl S { fn f(&self) -> usize { self.m.iter().count() } }";
        assert!(lint_ids(LIB, btree).is_empty());
    }

    // ---- L5: no-clock-in-compute ----

    #[test]
    fn l5_flags_clocks_and_entropy_in_compute_paths() {
        let clock = "fn f() { let t = std::time::Instant::now(); let _ = t; }";
        assert_eq!(lint_ids("crates/tensor/src/graph.rs", clock), vec!["no-clock-in-compute"]);
        assert_eq!(lint_ids("crates/core/src/model.rs", clock), vec!["no-clock-in-compute"]);
        let rng = "fn f() { let mut r = rand::thread_rng(); }";
        assert_eq!(lint_ids("crates/tensor/src/init.rs", rng), vec!["no-clock-in-compute"]);
    }

    #[test]
    fn l5_is_scoped_to_compute_paths() {
        let clock = "fn f() { let t = std::time::Instant::now(); let _ = t; }";
        assert!(lint_ids("crates/data/src/music.rs", clock).is_empty());
        assert!(lint_ids("crates/bench/src/bin/perfjson.rs", clock).is_empty());
    }

    // ---- findings carry position + snippet ----

    #[test]
    fn findings_report_line_and_snippet() {
        let src = "fn a() {}\nfn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}";
        let f = &lint_file(LIB, src)[0];
        assert_eq!(f.line, 3);
        assert_eq!(f.snippet, "x.unwrap()");
    }
}
