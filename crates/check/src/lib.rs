//! # adamel-check
//!
//! Workspace static analysis for the AdaMEL reproduction, in two layers.
//!
//! The token layer — a lightweight Rust lexer ([`lexer`]) and five
//! single-file lints ([`lints`]) guarding the numeric invariants the model
//! depends on (panic-free library code, the PR 1 threading determinism
//! boundary, no float `==`, no order-sensitive `HashMap` iteration, no
//! clocks/entropy in compute paths).
//!
//! The call-graph layer — an item/block tree parser ([`parse`]), a
//! workspace symbol table ([`symbols`]), an approximate call graph
//! ([`callgraph`]), and three whole-workspace passes ([`passes`]):
//! panic-reachability with shortest witness paths, MutexGuard live ranges
//! spanning parallel dispatch, and nondeterministic float reductions in
//! worker closures.
//!
//! Deliberate violations go through the allowlist ([`allow`]) with a
//! mandatory reason; reports render as text or versioned JSON ([`output`]).
//! The `adamel-check` binary walks `crates/**/*.rs`, applies both layers,
//! and exits nonzero on any finding not covered by `lint.allow` — CI runs
//! it next to `cargo clippy`. See DESIGN.md §9 for the lint catalog and
//! §14 for the call-graph approximation and its soundness caveats.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod callgraph;
pub mod lexer;
pub mod lints;
pub mod output;
pub mod parse;
pub mod passes;
pub mod symbols;
