//! # adamel-check
//!
//! Workspace static analysis for the AdaMEL reproduction: a lightweight
//! Rust lexer ([`lexer`]), five project lints ([`lints`]) guarding the
//! numeric invariants the model depends on (panic-free library code, the
//! PR 1 threading determinism boundary, no float `==`, no order-sensitive
//! `HashMap` iteration, no clocks/entropy in compute paths), and an
//! allowlist ([`allow`]) so deliberate violations are documented instead of
//! silenced.
//!
//! The `adamel-check` binary walks `crates/**/*.rs`, applies the lints, and
//! exits nonzero on any finding not covered by `lint.allow` — CI runs it
//! next to `cargo clippy`. See DESIGN.md §9 for the lint catalog and the
//! rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod lexer;
pub mod lints;
