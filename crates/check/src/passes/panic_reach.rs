//! `panic-reachability`: no public library function may reach a panic.
//!
//! May-panic facts are seeded at explicit panic sites (`panic!`, `todo!`,
//! `unimplemented!`, `unreachable!`, `.unwrap()`, `.expect(..)`), at
//! slice/array/map indexing (`x[i]`), and at integer `/`/`%` whose divisor
//! is a local the crude per-function type inference can establish as an
//! integer. Facts propagate backward through the approximate call graph;
//! each seed site that some bare-`pub` function of the nine library crates
//! can reach is reported once, with a shortest witness path.
//!
//! Soundness caveats (DESIGN.md §14): asserts are treated as intended
//! contract aborts, not accidental panics; arithmetic overflow, allocation
//! failure, and divisions whose divisor type cannot be established locally
//! are not seeded; call edges resolve by name, so a collision can make a
//! panic look reachable that rustc's resolution would not reach — the
//! witness path in the message is the evidence to audit.

use crate::callgraph::{shortest_path_to_root, CallGraph};
use crate::lexer::{TokKind, Token};
use crate::lints::Finding;
use crate::parse::INT_TYPES;
use crate::symbols::Workspace;
use std::collections::BTreeSet;

/// The nine model/library crates the pass guards (directory names under
/// `crates/`). The analysis tooling itself (`check`, `oracle`, `bench`) is
/// not serving-path code and indexes its own token buffers freely.
pub const LIBRARY_CRATES: &[&str] =
    &["baselines", "core", "data", "metrics", "obs", "schema", "serve", "tensor", "text"];

/// Macros that unconditionally panic when reached.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

/// Keywords that can directly precede a `[` that is *not* an indexing
/// expression (`for x in [a, b]`, `return [0; 4]`, ...).
const KEYWORDS: &[&str] = &[
    "as", "break", "const", "dyn", "else", "in", "let", "loop", "match", "move", "mut", "ref",
    "return", "static", "unsafe", "while", "yield",
];

struct Seed {
    fn_id: usize,
    line: usize,
    desc: String,
}

/// Runs the pass over `ws` + `graph`.
pub fn run(ws: &Workspace, graph: &CallGraph) -> Vec<Finding> {
    let mut seeds: Vec<Seed> = Vec::new();
    for (fn_id, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let file = &ws.files[f.file];
        if file.is_bin || !LIBRARY_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        let Some((b0, b1)) = f.body else { continue };
        collect_seeds(&file.toks, b0, b1, f.sig, fn_id, &mut seeds);
    }

    let is_root = |id: usize| {
        let f = &ws.fns[id];
        let file = &ws.files[f.file];
        f.is_pub && !f.is_test && !file.is_bin && LIBRARY_CRATES.contains(&file.crate_name.as_str())
    };

    let mut findings = Vec::new();
    let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new(); // (file, line)
    for seed in &seeds {
        let Some(path) = shortest_path_to_root(ws, graph, seed.fn_id, is_root) else {
            continue; // not reachable from any public library function
        };
        let f = &ws.fns[seed.fn_id];
        if !reported.insert((f.file, seed.line)) {
            continue; // one finding per source line
        }
        let witness = witness(ws, &path);
        findings.push(Finding {
            lint: "panic-reachability",
            path: ws.files[f.file].path.clone(),
            line: seed.line,
            message: format!("{}; {witness}", seed.desc),
            snippet: ws.snippet(f.file, seed.line),
        });
    }
    findings
}

/// Renders the witness path `[root, .., seed_fn]` for the finding message.
fn witness(ws: &Workspace, path: &[usize]) -> String {
    let root = ws.fns[path[0]].qualified(ws);
    if path.len() == 1 {
        return format!("in the body of public `{root}`");
    }
    let hops: Vec<&str> = path[1..].iter().map(|&id| ws.fns[id].name.as_str()).collect();
    format!("reachable from public `{root}` via {}", hops.join(" → "))
}

/// Collects may-panic seeds in the body token range `[b0, b1]`; `sig` is
/// scanned (together with the body) for the integer-type evidence the
/// division seeds need.
fn collect_seeds(
    toks: &[Token],
    b0: usize,
    b1: usize,
    sig: (usize, usize),
    fn_id: usize,
    out: &mut Vec<Seed>,
) {
    let int_names = int_typed_names(toks, sig, (b0, b1));
    let mut j = b0;
    while j <= b1 && j < toks.len() {
        let t = &toks[j];
        // Explicit panics.
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(j + 1).is_some_and(|n| n.is_punct("!"))
        {
            out.push(Seed {
                fn_id,
                line: t.line,
                desc: format!("`{}!` panics when reached", t.text),
            });
        }
        if t.is_punct(".")
            && toks.get(j + 1).is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
            && toks.get(j + 2).is_some_and(|n| n.is_punct("("))
        {
            out.push(Seed {
                fn_id,
                line: t.line,
                desc: format!("`.{}(..)` may panic", toks[j + 1].text),
            });
        }
        // Indexing: `[` in postfix position (after an identifier, `)`, or
        // `]`). Attribute (`#[`), macro (`vec![`), type (`: [u8; 4]`),
        // slice-pattern, and array-literal brackets all have non-postfix
        // predecessors — including a keyword (`for x in [a, b]`).
        if t.is_punct("[") && j > b0 {
            let prev = &toks[j - 1];
            let keyword = prev.kind == TokKind::Ident && KEYWORDS.contains(&prev.text.as_str());
            if prev.kind == TokKind::Ident && !keyword || prev.is_punct(")") || prev.is_punct("]") {
                let what = if prev.kind == TokKind::Ident {
                    format!("`{}[..]`", prev.text)
                } else {
                    "postfix `[..]`".to_string()
                };
                out.push(Seed {
                    fn_id,
                    line: t.line,
                    desc: format!("indexing {what} may panic on out-of-bounds"),
                });
            }
        }
        // Integer division / remainder with a divisor known to be integer.
        if matches!(t.text.as_str(), "/" | "%" | "/=" | "%=") && t.kind == TokKind::Punct {
            if let Some(d) = toks.get(j + 1) {
                let divisor_int_ident = d.kind == TokKind::Ident
                    && int_names.contains(d.text.as_str())
                    && !toks.get(j + 2).is_some_and(|n| n.is_punct(".") || n.is_ident("as"));
                let zero_literal = d.kind == TokKind::Int && int_value_is_zero(&d.text);
                if divisor_int_ident || zero_literal {
                    let name = if zero_literal { "0" } else { d.text.as_str() };
                    out.push(Seed {
                        fn_id,
                        line: t.line,
                        desc: format!(
                            "integer `{}` with divisor `{name}` may panic on zero",
                            t.text
                        ),
                    });
                }
            }
        }
        j += 1;
    }
}

/// True when an integer literal's value is zero (`0`, `0_0`, `0x0`, ...).
fn int_value_is_zero(text: &str) -> bool {
    let digits: String = text
        .trim_start_matches("0x")
        .trim_start_matches("0b")
        .trim_start_matches("0o")
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric())
        .filter(|c| c.is_ascii_hexdigit())
        .collect();
    !digits.is_empty() && digits.chars().all(|c| c == '0')
}

/// Crude local type inference: names annotated `name: <int-type>` (params,
/// lets, fields in struct expressions) or initialized `name = <int
/// literal>` anywhere in the signature or body. A name with *any* float
/// evidence (`name: f32`, `name = .. as f64`, `name = 1.0`) in the same
/// function is excluded even if another binding reuses it for an integer —
/// when the inference is ambiguous the pass stays silent.
fn int_typed_names(toks: &[Token], sig: (usize, usize), body: (usize, usize)) -> BTreeSet<&str> {
    let mut ints = BTreeSet::new();
    let mut floats = BTreeSet::new();
    let ranges = [sig, body];
    for (lo, hi) in ranges {
        let mut j = lo;
        while j + 2 <= hi && j + 2 < toks.len() {
            let (a, b, _c) = (&toks[j], &toks[j + 1], &toks[j + 2]);
            if a.kind == TokKind::Ident && b.is_punct(":") {
                // name: usize / name: f32 — possibly through `&`/`mut`.
                let mut k = j + 2;
                while k < toks.len() && (toks[k].is_punct("&") || toks[k].is_ident("mut")) {
                    k += 1;
                }
                if let Some(ty) = toks.get(k) {
                    if INT_TYPES.contains(&ty.text.as_str()) {
                        ints.insert(a.text.as_str());
                    } else if ty.is_ident("f32") || ty.is_ident("f64") {
                        floats.insert(a.text.as_str());
                    }
                }
            }
            if a.kind == TokKind::Ident && b.is_punct("=") {
                // Classify by the initializer: scan the statement for the
                // first decisive token.
                let mut k = j + 2;
                while k <= hi && k < toks.len() && !toks[k].is_punct(";") {
                    let t = &toks[k];
                    if t.kind == TokKind::Float || t.is_ident("f32") || t.is_ident("f64") {
                        floats.insert(a.text.as_str());
                        break;
                    }
                    if k == j + 2 && t.kind == TokKind::Int {
                        ints.insert(a.text.as_str());
                        break;
                    }
                    k += 1;
                }
            }
            j += 1;
        }
    }
    &ints - &floats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;

    fn run_on(src: &str) -> Vec<Finding> {
        let ws =
            Workspace::from_sources(vec![("crates/core/src/lib.rs".to_string(), src.to_string())]);
        let graph = callgraph::build(&ws);
        run(&ws, &graph)
    }

    #[test]
    fn unwrap_behind_private_helper_is_reported_with_witness() {
        let out = run_on(
            "pub fn api(x: Option<u8>) -> u8 { helper(x) }\n\
                          fn helper(x: Option<u8>) -> u8 { x.unwrap() }",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "panic-reachability");
        assert_eq!(out[0].line, 2);
        assert!(out[0].message.contains("core::api"), "witness names the root: {}", out[0].message);
        assert!(out[0].message.contains("via helper"), "{}", out[0].message);
    }

    #[test]
    fn unreached_private_panic_is_silent() {
        let out = run_on("pub fn api() {}\nfn dead(x: Option<u8>) -> u8 { x.unwrap() }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn indexing_and_int_division_seed() {
        let out = run_on(
            "pub fn idx(v: &[u8], i: usize) -> u8 { v[i] }\n\
                          pub fn div(a: usize, b: usize) -> usize { a / b }",
        );
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.contains("indexing"), "{}", out[0].message);
        assert!(out[1].message.contains("divisor `b`"), "{}", out[1].message);
    }

    #[test]
    fn benign_division_and_literals_do_not_seed() {
        let out = run_on(
            "pub fn f(a: usize, x: f32, y: f32) -> f32 { let half = a / 2; x / y + half as f32 }",
        );
        assert!(out.is_empty(), "nonzero literal and float division are safe: {out:?}");
    }

    #[test]
    fn ambiguous_divisor_name_stays_silent() {
        // `n` is an integer in one binding and a float in another; the
        // float division must not be reported as an integer one.
        let out = run_on(
            "pub fn f(xs: &mut [f32]) -> f32 {\n\
             \x20   let n = 3;\n\
             \x20   let m = n * 2;\n\
             \x20   let n = xs.len().max(1) as f32;\n\
             \x20   xs.iter().sum::<f32>() / n + m as f32\n}",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn tests_and_non_postfix_brackets_are_masked() {
        let out = run_on(
            "#[cfg(test)]\nmod t { fn f(x: Option<u8>) { x.unwrap(); } }\n\
             pub fn ok(n: usize) -> Vec<u8> { let v: [u8; 2] = [0; 2]; vec![0; n] }\n\
             pub fn arr(a: &[u8], b: &[u8]) -> usize { let mut n = 0; \
             for s in [a, b] { n += s.len(); } n }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn public_fn_with_direct_panic_reports_itself() {
        let out = run_on("pub fn api() { panic!(\"boom\"); }");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("in the body of public"), "{}", out[0].message);
    }
}
