//! `nondeterministic-reduction`: no float accumulation into captured state
//! inside a parallel worker closure.
//!
//! `adamel_tensor::parallel` guarantees bit-identical results regardless of
//! worker count, and every dispatch keeps that promise the same way: each
//! worker only writes state it owns (its row, its block, its output slot),
//! so no cross-worker combine order exists. A worker closure that instead
//! accumulates into *captured* state (`sum += row[j]`, `self.total *= x`)
//! re-introduces a combine whose order depends on how rows are sharded
//! across workers — and float addition is not associative, so the result
//! changes with the thread count. This pass flags exactly that shape:
//! a compound float assignment (`+=`, `-=`, `*=`, `/=`) inside a closure
//! passed to one of [`super::DISPATCH_FNS`], whose target's base
//! identifier is not closure-local (a param, `let`, or `for` binding of
//! the closure itself).
//!
//! Float evidence is crude and local, biasing toward silence: the
//! statement must contain a float literal or an `f32`/`f64` token, or the
//! target must be float-typed in the enclosing function (DESIGN.md §14).
//! Integer accumulation is associative and not flagged.

use crate::lexer::{TokKind, Token};
use crate::lints::Finding;
use crate::parse::match_brace;
use crate::symbols::Workspace;
use std::collections::BTreeSet;

/// Runs the pass over `ws`.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in ws.fns.iter() {
        if f.is_test {
            continue;
        }
        let file = &ws.files[f.file];
        let toks = &file.toks;
        let Some((b0, b1)) = f.body else { continue };
        let float_names = float_typed_names(toks, f.sig, (b0, b1));

        let mut i = b0;
        while i <= b1 && i < toks.len() {
            if !super::is_direct_dispatch(toks, i) {
                i += 1;
                continue;
            }
            let args_close = matching_paren(toks, i + 1);
            for clo in closures_in(toks, i + 2, args_close) {
                check_closure(toks, &clo, &float_names, |line, target| {
                    findings.push(Finding {
                        lint: "nondeterministic-reduction",
                        path: file.path.clone(),
                        line,
                        message: format!(
                            "float accumulation into captured `{target}` inside a `{}` worker \
                             closure; the combine order depends on the worker count, so results \
                             change with threads — reduce into per-worker state and combine \
                             deterministically after the dispatch",
                            toks[i].text
                        ),
                        snippet: ws.snippet(f.file, line),
                    });
                });
            }
            i += 1;
        }
    }
    findings
}

/// A closure argument: its locals (params + bindings) and body token range.
struct Closure {
    locals: BTreeSet<String>,
    body: (usize, usize),
}

/// Index of the `)` matching the `(` at `open` (best effort).
fn matching_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 1usize;
    let mut j = open + 1;
    while j < toks.len() {
        if toks[j].is_punct("(") {
            depth += 1;
        } else if toks[j].is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Finds closure literals between `lo` and `hi` (the dispatch call's
/// argument tokens). A closure starts at a `|` / `||` punct preceded by
/// `(`, `,`, or `move` — which excludes bitwise-or, whose left operand is
/// an expression.
fn closures_in(toks: &[Token], lo: usize, hi: usize) -> Vec<Closure> {
    let mut out = Vec::new();
    let mut j = lo;
    while j < hi && j < toks.len() {
        let starts = (toks[j].is_punct("|") || toks[j].is_punct("||"))
            && j > 0
            && (toks[j - 1].is_punct("(")
                || toks[j - 1].is_punct(",")
                || toks[j - 1].is_ident("move"));
        if !starts {
            j += 1;
            continue;
        }
        let mut locals = BTreeSet::new();
        let params_end = if toks[j].is_punct("||") {
            j // no params
        } else {
            let mut k = j + 1;
            while k < hi && !toks[k].is_punct("|") {
                // Param names and their type idents both land in `locals`;
                // the extra type names only ever suppress, never flag.
                if toks[k].kind == TokKind::Ident {
                    locals.insert(toks[k].text.clone());
                }
                k += 1;
            }
            k
        };
        // Body: a brace block, or an expression running to the `,`/`)` that
        // ends this argument.
        let mut b = params_end + 1;
        // Skip a `-> Type` return annotation before a brace body.
        while b < hi && !toks[b].is_punct("{") && !toks[b].is_punct(",") && !toks[b].is_punct(")") {
            b += 1;
        }
        let body = if b < hi && toks[b].is_punct("{") {
            (b, match_brace(toks, b))
        } else {
            (params_end + 1, expression_arg_end(toks, params_end + 1, hi))
        };
        collect_locals(toks, body, &mut locals);
        out.push(Closure { locals, body });
        j = body.1 + 1;
    }
    out
}

/// End of an expression-bodied closure argument: the token before the
/// first `,` or `)` at delimiter depth 0.
fn expression_arg_end(toks: &[Token], from: usize, hi: usize) -> usize {
    let mut depth = 0isize;
    let mut j = from;
    while j < hi && j < toks.len() {
        let t = &toks[j];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            if depth == 0 {
                return j.saturating_sub(1).max(from);
            }
            depth -= 1;
        } else if t.is_punct(",") && depth == 0 {
            return j.saturating_sub(1).max(from);
        }
        j += 1;
    }
    hi.saturating_sub(1).max(from)
}

/// Adds `let`/`for` bindings (including tuple patterns) made inside the
/// body range to `locals`.
fn collect_locals(toks: &[Token], body: (usize, usize), locals: &mut BTreeSet<String>) {
    let (lo, hi) = body;
    let mut j = lo;
    while j <= hi && j < toks.len() {
        if toks[j].is_ident("let") || toks[j].is_ident("for") {
            // Bind every ident in the pattern, up to `=` (let) or `in`
            // (for). Type annotations after `:` also land here — harmless,
            // see `closures_in`.
            let mut k = j + 1;
            while k <= hi && k < toks.len() {
                let t = &toks[k];
                if t.is_punct("=") || t.is_ident("in") || t.is_punct(";") || t.is_punct("{") {
                    break;
                }
                if t.kind == TokKind::Ident && !t.is_ident("mut") && !t.is_ident("ref") {
                    locals.insert(t.text.clone());
                }
                k += 1;
            }
            j = k;
            continue;
        }
        j += 1;
    }
}

/// Scans a closure body for compound float assignments to captured targets
/// and reports each via `emit(line, target)`.
fn check_closure(
    toks: &[Token],
    clo: &Closure,
    float_names: &BTreeSet<&str>,
    mut emit: impl FnMut(usize, &str),
) {
    let (lo, hi) = clo.body;
    let mut j = lo;
    while j <= hi && j < toks.len() {
        let is_compound = toks[j].kind == TokKind::Punct
            && matches!(toks[j].text.as_str(), "+=" | "-=" | "*=" | "/=");
        if !is_compound {
            j += 1;
            continue;
        }
        if let Some(base) = target_base(toks, lo, j) {
            let captured = base == "self" || !clo.locals.contains(base);
            if captured && float_evidence(toks, lo, hi, j, base, float_names) {
                emit(toks[j].line, base);
            }
        }
        j += 1;
    }
}

/// Walks left from the compound-assign operator at `op` to the target's
/// base identifier, through `[index]` groups, `.field` chains, and a
/// leading `*` deref. `self.total`, `acc[i]`, and `*sum` all resolve to
/// their leftmost identifier.
fn target_base(toks: &[Token], lo: usize, op: usize) -> Option<&str> {
    let mut j = op.checked_sub(1)?;
    loop {
        if toks[j].is_punct("]") {
            // Balance back to the matching `[`.
            let mut depth = 1usize;
            while depth > 0 {
                j = j.checked_sub(1)?;
                if toks[j].is_punct("]") {
                    depth += 1;
                } else if toks[j].is_punct("[") {
                    depth -= 1;
                }
            }
            j = j.checked_sub(1)?;
            continue;
        }
        if toks[j].kind == TokKind::Ident {
            if j > lo && toks[j - 1].is_punct(".") {
                j = j.checked_sub(2)?;
                continue;
            }
            return Some(&toks[j].text);
        }
        return None;
    }
}

/// Float evidence for the compound assignment at `op`: a float literal or
/// `f32`/`f64` token in the statement, or a float-typed target.
fn float_evidence(
    toks: &[Token],
    body_lo: usize,
    body_hi: usize,
    op: usize,
    base: &str,
    float_names: &BTreeSet<&str>,
) -> bool {
    if float_names.contains(base) {
        return true;
    }
    let stmt_end = super::statement_end(toks, op, body_hi);
    let mut stmt_start = op;
    while stmt_start > body_lo {
        let t = &toks[stmt_start - 1];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            break;
        }
        stmt_start -= 1;
    }
    toks[stmt_start..=stmt_end.min(toks.len().saturating_sub(1))]
        .iter()
        .any(|t| t.kind == TokKind::Float || t.is_ident("f32") || t.is_ident("f64"))
}

/// Names with local float-type evidence in the enclosing function:
/// `name: [&mut] [[]Vec<] f32/f64` annotations and `name = <float>` inits.
fn float_typed_names(toks: &[Token], sig: (usize, usize), body: (usize, usize)) -> BTreeSet<&str> {
    let mut names = BTreeSet::new();
    for (lo, hi) in [sig, body] {
        let mut j = lo;
        while j + 2 <= hi && j + 2 < toks.len() {
            let (a, b, c) = (&toks[j], &toks[j + 1], &toks[j + 2]);
            if a.kind == TokKind::Ident && b.is_punct(":") {
                let mut k = j + 2;
                let mut hops = 0;
                while k < toks.len() && hops < 6 {
                    let t = &toks[k];
                    if t.is_ident("f32") || t.is_ident("f64") {
                        names.insert(a.text.as_str());
                        break;
                    }
                    let transparent = t.is_punct("&")
                        || t.is_punct("[")
                        || t.is_punct("<")
                        || t.is_ident("mut")
                        || t.is_ident("Vec");
                    if !transparent {
                        break;
                    }
                    k += 1;
                    hops += 1;
                }
            }
            if a.kind == TokKind::Ident && b.is_punct("=") && c.kind == TokKind::Float {
                names.insert(a.text.as_str());
            }
            j += 1;
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Finding> {
        let ws = Workspace::from_sources(vec![(
            "crates/tensor/src/lib.rs".to_string(),
            src.to_string(),
        )]);
        run(&ws)
    }

    #[test]
    fn captured_float_accumulation_is_flagged() {
        let out = run_on(
            "pub fn bad(data: &mut [f32], width: usize) {\n\
             \x20   let mut sum = 0.0f32;\n\
             \x20   parallel_for_rows(data, width, 1, |i, row| {\n\
             \x20       sum += row[0];\n\
             \x20   });\n}",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].lint, "nondeterministic-reduction");
        assert_eq!(out[0].line, 4);
        assert!(out[0].message.contains("`sum`"), "{}", out[0].message);
    }

    #[test]
    fn per_row_accumulation_into_the_closure_param_is_clean() {
        let out = run_on(
            "pub fn good(data: &mut [f32], width: usize) {\n\
             \x20   parallel_for_rows(data, width, 1, |i, row| {\n\
             \x20       row[0] += 1.0;\n\
             \x20       let mut local = 0.0f32;\n\
             \x20       for v in row.iter() { local += *v; }\n\
             \x20       row[1] = local;\n\
             \x20   });\n}",
        );
        assert!(out.is_empty(), "param/let/for bindings are worker-local: {out:?}");
    }

    #[test]
    fn integer_accumulation_is_not_flagged() {
        let out = run_on(
            "pub fn counts(data: &mut [f32], width: usize, hits: &mut usize) {\n\
             \x20   parallel_for_rows(data, width, 1, |i, row| {\n\
             \x20       let n: usize = row.len();\n\
             \x20       *hits += n;\n\
             \x20   });\n}",
        );
        assert!(out.is_empty(), "integer reduction is associative: {out:?}");
    }

    #[test]
    fn self_field_target_and_deref_target_are_captured() {
        let out = run_on(
            "struct Acc { total: f64 }\n\
             impl Acc {\n\
             pub fn bad(&mut self, data: &mut [f32], width: usize) {\n\
             \x20   parallel_for_rows(data, width, 1, |i, row| {\n\
             \x20       self.total += row[0] as f64;\n\
             \x20   });\n}\n}",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`self`"), "{}", out[0].message);
    }

    #[test]
    fn accumulation_outside_a_dispatch_closure_is_clean() {
        let out = run_on(
            "pub fn serial(xs: &[f32]) -> f32 {\n\
             \x20   let mut sum = 0.0f32;\n\
             \x20   for x in xs { sum += *x; }\n\
             \x20   sum\n}",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn tests_are_masked() {
        let out = run_on(
            "#[cfg(test)]\nmod t {\n\
             fn bad(data: &mut [f32], width: usize) {\n\
             \x20   let mut sum = 0.0f32;\n\
             \x20   parallel_for_rows(data, width, 1, |i, row| { sum += row[0]; });\n}\n}",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
