//! `lock-across-dispatch`: a `MutexGuard` must not be live across a call
//! into `adamel_tensor::parallel` dispatch.
//!
//! A worker closure that re-locks the mutex its caller is holding
//! deadlocks, and even a read-only guard serializes the very section the
//! dispatch tried to parallelize. The `FeatureExtractor` encoding cache's
//! lock-once-per-batch discipline is the one deliberate exception (the
//! guard is reborrowed as `&EncodeCache` shared state, and workers never
//! re-lock) — it carries a reasoned `lint.allow` entry, which is exactly
//! the point: the invariant is now machine-checked and the exception is
//! documented.
//!
//! Guard acquisitions are `.lock()` calls plus calls to any workspace
//! function whose signature mentions `MutexGuard` (e.g.
//! `FeatureExtractor::lock_cache`). The live range runs from the
//! acquisition to the end of the enclosing block for `let`-bound guards
//! (shortened by an explicit `drop(guard)`), or to the end of the
//! statement for temporaries. A dispatch inside the range is flagged if it
//! calls one of [`super::DISPATCH_FNS`] directly or (via the call graph)
//! any function that may transitively dispatch. Test code is masked:
//! test-serialization guards legitimately span dispatches.

use crate::callgraph::{resolve_call_at, CallGraph};
use crate::lexer::{TokKind, Token};
use crate::lints::Finding;
use crate::symbols::Workspace;
use std::collections::{BTreeSet, VecDeque};

/// Runs the pass over `ws` + `graph`.
pub fn run(ws: &Workspace, graph: &CallGraph) -> Vec<Finding> {
    let may_dispatch = may_dispatch_set(ws, graph);
    let lock_returning = lock_returning_names(ws);

    let mut findings = Vec::new();
    for f in ws.fns.iter() {
        if f.is_test {
            continue;
        }
        let Some((b0, b1)) = f.body else { continue };
        let file = &ws.files[f.file];
        let toks = &file.toks;

        let mut j = b0;
        while j <= b1 && j < toks.len() {
            let acquired = is_lock_acquisition(toks, j, &lock_returning);
            if !acquired {
                j += 1;
                continue;
            }
            let (guard, range_end) = guard_live_range(toks, j, b1);
            let lock_line = toks[j].line;
            let mut k = j + 1;
            while k <= range_end && k < toks.len() {
                if let Some(desc) = dispatch_at(ws, toks, k, &may_dispatch) {
                    let name = guard.clone().unwrap_or_else(|| "<temporary>".to_string());
                    findings.push(Finding {
                        lint: "lock-across-dispatch",
                        path: file.path.clone(),
                        line: toks[k].line,
                        message: format!(
                            "{desc} while MutexGuard `{name}` (locked at line {lock_line}) is \
                             live; drop the guard before dispatching, or allowlist the \
                             documented lock discipline"
                        ),
                        snippet: ws.snippet(f.file, toks[k].line),
                    });
                }
                k += 1;
            }
            j += 1;
        }
    }
    findings
}

/// Function ids that may (transitively) call into parallel dispatch.
///
/// Propagation only follows *unique* call edges (resolution found exactly
/// one candidate): the name-based call graph resolves a common method name
/// like `.push(` or `.clone()` to every same-named method in the
/// workspace, and chasing those collision edges would mark nearly every
/// function as may-dispatch. A chain the lint misses because one hop was
/// ambiguous still has its direct dispatch guarded at the innermost
/// caller.
fn may_dispatch_set(ws: &Workspace, graph: &CallGraph) -> BTreeSet<usize> {
    let mut set = BTreeSet::new();
    let mut queue = VecDeque::new();
    for (id, f) in ws.fns.iter().enumerate() {
        let Some((b0, b1)) = f.body else { continue };
        let toks = &ws.files[f.file].toks;
        let direct =
            (b0..=b1.min(toks.len().saturating_sub(1))).any(|i| super::is_direct_dispatch(toks, i));
        if direct && set.insert(id) {
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        for &caller in &graph.callers[id] {
            let via_unique = graph.calls[caller].iter().any(|c| c.callee == id && c.unique);
            if via_unique && set.insert(caller) {
                queue.push_back(caller);
            }
        }
    }
    set
}

/// Names of workspace functions whose signature mentions a guard type —
/// calling one acquires a lock the caller now holds.
fn lock_returning_names(ws: &Workspace) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for f in &ws.fns {
        let toks = &ws.files[f.file].toks;
        let (s0, s1) = f.sig;
        let guardy = toks[s0..s1.min(toks.len())].iter().any(|t| {
            t.is_ident("MutexGuard")
                || t.is_ident("RwLockReadGuard")
                || t.is_ident("RwLockWriteGuard")
        });
        if guardy {
            names.insert(f.name.clone());
        }
    }
    names
}

/// True when token `j` starts a lock acquisition: the `lock` of
/// `recv.lock(`, or a call to a guard-returning workspace function.
fn is_lock_acquisition(toks: &[Token], j: usize, lock_returning: &BTreeSet<String>) -> bool {
    if !super::is_call(toks, j) {
        return false;
    }
    let prev_is_dot = j > 0 && toks[j - 1].is_punct(".");
    if toks[j].is_ident("lock") && prev_is_dot {
        return true;
    }
    if toks[j].is_ident("try_lock") || toks[j].is_ident("read") || toks[j].is_ident("write") {
        // try_lock/read/write guards matter just as much, but `read`/
        // `write` collide with io traits; only flag them on a `.lock`-like
        // receiver we cannot see. Keep to explicit guard-returning helpers.
    }
    lock_returning.contains(&toks[j].text)
}

/// Determines the guard binding and its live-range end for the acquisition
/// at `j`: `let`-bound guards live to the enclosing block's close or an
/// explicit `drop(name)`; temporaries (including `let _ = ..`) live to the
/// statement's end.
fn guard_live_range(toks: &[Token], j: usize, hi: usize) -> (Option<String>, usize) {
    // Find the statement start: the token after the nearest `;`/`{`/`}`.
    let mut s = j;
    while s > 0 {
        let t = &toks[s - 1];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            break;
        }
        s -= 1;
    }
    let binding = if toks.get(s).is_some_and(|t| t.is_ident("let")) {
        let mut k = s + 1;
        if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        toks.get(k).filter(|t| t.kind == TokKind::Ident && t.text != "_").map(|t| t.text.clone())
    } else {
        None
    };
    match binding {
        Some(name) => {
            let block_end = super::enclosing_block_end(toks, j, hi);
            // An explicit drop(name) ends the range early.
            let mut k = j;
            while k + 2 <= block_end && k + 2 < toks.len() {
                if toks[k].is_ident("drop")
                    && toks[k + 1].is_punct("(")
                    && toks[k + 2].is_ident(&name)
                {
                    return (Some(name), k);
                }
                k += 1;
            }
            (Some(name), block_end)
        }
        None => (None, super::statement_end(toks, j, hi)),
    }
}

/// If token `k` heads a call that dispatches (directly or transitively),
/// returns a description for the finding message.
fn dispatch_at(
    ws: &Workspace,
    toks: &[Token],
    k: usize,
    may_dispatch: &BTreeSet<usize>,
) -> Option<String> {
    if !super::is_call(toks, k) {
        return None;
    }
    if super::DISPATCH_FNS.contains(&toks[k].text.as_str()) {
        return Some(format!("parallel dispatch `{}(..)`", toks[k].text));
    }
    // Transitive dispatch is only trusted when the call resolves to exactly
    // one candidate — see `may_dispatch_set` for why.
    let callees = resolve_call_at(ws, toks, k);
    let [only] = callees.as_slice() else { return None };
    if !may_dispatch.contains(only) {
        return None;
    }
    Some(format!(
        "call to `{}` (which may dispatch into adamel_tensor::parallel)",
        ws.fns[*only].qualified(ws)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;

    fn run_on(src: &str) -> Vec<Finding> {
        let ws = Workspace::from_sources(vec![(
            "crates/schema/src/lib.rs".to_string(),
            src.to_string(),
        )]);
        let graph = callgraph::build(&ws);
        run(&ws, &graph)
    }

    const GUARD_ACROSS: &str = "pub fn bad(m: &std::sync::Mutex<u8>) {\n\
                                \x20   let guard = m.lock().unwrap_or_else(|p| p.into_inner());\n\
                                \x20   parallel_for_rows(&mut [], 1, 1, |_, _| {});\n\
                                \x20   let _ = *guard;\n}";

    #[test]
    fn guard_spanning_dispatch_is_flagged() {
        let out = run_on(GUARD_ACROSS);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].lint, "lock-across-dispatch");
        assert_eq!(out[0].line, 3);
        assert!(out[0].message.contains("`guard`"), "{}", out[0].message);
    }

    #[test]
    fn dropping_the_guard_first_is_clean() {
        let out = run_on(
            "pub fn good(m: &std::sync::Mutex<u8>) {\n\
             \x20   let guard = m.lock().unwrap_or_else(|p| p.into_inner());\n\
             \x20   drop(guard);\n\
             \x20   parallel_for_rows(&mut [], 1, 1, |_, _| {});\n}",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn block_scoped_guard_is_clean() {
        let out = run_on(
            "pub fn good(m: &std::sync::Mutex<u8>) {\n\
             \x20   { let _guard = m.lock().unwrap_or_else(|p| p.into_inner()); }\n\
             \x20   parallel_for_rows(&mut [], 1, 1, |_, _| {});\n}",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn guard_returning_helper_counts_as_acquisition() {
        let out = run_on(
            "use std::sync::MutexGuard;\n\
             struct S { m: std::sync::Mutex<u8> }\n\
             impl S {\n\
             fn lock_it(&self) -> MutexGuard<'_, u8> { self.m.lock().unwrap_or_else(|p| p.into_inner()) }\n\
             pub fn bad(&self) {\n\
             \x20   let g = self.lock_it();\n\
             \x20   parallel_for_rows(&mut [], 1, 1, |_, _| {});\n\
             \x20   let _ = *g;\n}\n}",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`g`"), "{}", out[0].message);
    }

    #[test]
    fn transitive_dispatch_through_a_helper_is_flagged() {
        let out = run_on(
            "fn helper() { parallel_map_collect(4, 1, |i| i); }\n\
             pub fn bad(m: &std::sync::Mutex<u8>) {\n\
             \x20   let guard = m.lock().unwrap_or_else(|p| p.into_inner());\n\
             \x20   helper();\n\
             \x20   let _ = *guard;\n}",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("helper"), "{}", out[0].message);
    }

    #[test]
    fn tests_are_masked() {
        let out = run_on(&format!("#[cfg(test)]\nmod t {{ {GUARD_ACROSS} }}"));
        assert!(out.is_empty(), "{out:?}");
    }
}
