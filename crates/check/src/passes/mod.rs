//! Call-graph analysis passes.
//!
//! Unlike the token-pattern lints in [`crate::lints`], these passes run
//! over the whole-workspace item tree, symbol table, and approximate call
//! graph:
//!
//! | id | rule |
//! |----|------|
//! | [`panic-reachability`](panic_reach)      | no public library function may reach a `panic!`/`unwrap`/`expect`/indexing/integer-division site |
//! | [`lock-across-dispatch`](lock_dispatch)  | no `MutexGuard` live range may span a call into `adamel_tensor::parallel` dispatch |
//! | [`nondeterministic-reduction`](nondet_reduction) | no float accumulation into captured state inside a parallel worker closure |
//!
//! All three are approximations with a documented bias (DESIGN.md §14):
//! reachability over-approximates (name-resolved call edges), the seed and
//! accumulation detectors under-approximate (they only flag what crude
//! local type inference can establish). Deliberate violations go through
//! `lint.allow` with a reason, exactly like the token lints.

pub mod lock_dispatch;
pub mod nondet_reduction;
pub mod panic_reach;

use crate::callgraph::CallGraph;
use crate::lexer::{TokKind, Token};
use crate::lints::Finding;
use crate::symbols::Workspace;

/// The `adamel_tensor::parallel` entry points a worker closure is handed
/// to. Kept in one place so the two parallel-discipline passes agree.
pub const DISPATCH_FNS: &[&str] =
    &["parallel_for_rows", "parallel_for_row_blocks", "parallel_map_collect"];

/// Runs every pass and returns the combined findings, sorted by
/// (path, line, lint) with at most one finding per (lint, path, line).
pub fn run_all(ws: &Workspace, graph: &CallGraph) -> Vec<Finding> {
    let mut findings = panic_reach::run(ws, graph);
    findings.extend(lock_dispatch::run(ws, graph));
    findings.extend(nondet_reduction::run(ws));
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.lint, &a.message).cmp(&(&b.path, b.line, b.lint, &b.message))
    });
    findings.dedup_by(|a, b| a.lint == b.lint && a.path == b.path && a.line == b.line);
    findings
}

/// True when the identifier at `i` is a call head: `name(`.
pub(crate) fn is_call(toks: &[Token], i: usize) -> bool {
    toks[i].kind == TokKind::Ident && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
}

/// True when the call at `i` targets one of [`DISPATCH_FNS`] textually.
pub(crate) fn is_direct_dispatch(toks: &[Token], i: usize) -> bool {
    is_call(toks, i) && DISPATCH_FNS.contains(&toks[i].text.as_str())
}

/// Scans forward from `from` (exclusive of the enclosing block's `{`) and
/// returns the index just before the enclosing block closes — i.e. where a
/// binding made at `from` goes out of scope. Statement-level `;` does not
/// stop the scan.
pub(crate) fn enclosing_block_end(toks: &[Token], from: usize, hi: usize) -> usize {
    let mut depth = 0isize;
    let mut j = from;
    while j <= hi && j < toks.len() {
        if toks[j].is_punct("{") {
            depth += 1;
        } else if toks[j].is_punct("}") {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        }
        j += 1;
    }
    hi.min(toks.len().saturating_sub(1))
}

/// Scans forward from `from` to the end of the current statement: the
/// first `;` at delimiter depth 0, or the enclosing block's close if the
/// expression is a tail expression.
pub(crate) fn statement_end(toks: &[Token], from: usize, hi: usize) -> usize {
    let mut depth = 0isize;
    let mut j = from;
    while j <= hi && j < toks.len() {
        let t = &toks[j];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        } else if t.is_punct(";") && depth == 0 {
            return j;
        }
        j += 1;
    }
    hi.min(toks.len().saturating_sub(1))
}
