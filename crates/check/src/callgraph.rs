//! Approximate workspace call graph.
//!
//! Call sites are recovered from function-body token streams by pattern
//! (`name(`, `recv.name(`, `Qual::name(`) and resolved *by name* against
//! the symbol table: a method call edges to every same-named method, a
//! `Qual::name` call prefers methods of `Qual` (then functions in a module
//! named `Qual`), and a bare call prefers free functions. The result
//! over-approximates: a name collision adds edges that rustc's real
//! resolution would not. For the panic-reachability pass this errs on the
//! side of reporting (a spurious edge can only make more panics look
//! reachable), which is the conservative direction for a lint. See
//! DESIGN.md §14.

use crate::lexer::{TokKind, Token};
use crate::symbols::Workspace;

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct CallSite {
    /// Callee function id.
    pub callee: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: usize,
    /// True when the name resolved to exactly one candidate. Passes that
    /// must not chase collision noise (lock-across-dispatch) only trust
    /// unique edges; panic-reachability deliberately follows all of them.
    pub unique: bool,
}

/// Forward and reverse adjacency over [`Workspace::fns`].
#[derive(Debug)]
pub struct CallGraph {
    /// Per-caller resolved call sites (deduped by callee, first site wins).
    pub calls: Vec<Vec<CallSite>>,
    /// Per-callee caller ids (deduped).
    pub callers: Vec<Vec<usize>>,
}

/// Identifiers that look like calls but never are.
const NOT_CALLS: &[&str] = &[
    "if", "match", "while", "for", "loop", "return", "fn", "move", "in", "let", "else", "Some",
    "None", "Ok", "Err", "Self",
];

/// Builds the call graph for `ws`.
pub fn build(ws: &Workspace) -> CallGraph {
    let n = ws.fns.len();
    let mut calls: Vec<Vec<CallSite>> = vec![Vec::new(); n];
    for (caller, f) in ws.fns.iter().enumerate() {
        let Some((b0, b1)) = f.body else { continue };
        let toks = &ws.files[f.file].toks;
        let mut i = b0;
        while i < b1 && i + 1 < toks.len() {
            let t = &toks[i];
            let callish = t.kind == TokKind::Ident
                && toks[i + 1].is_punct("(")
                && !NOT_CALLS.contains(&t.text.as_str());
            if !callish {
                i += 1;
                continue;
            }
            let resolved = resolve_call_at(ws, toks, i);
            let unique = resolved.len() == 1;
            for callee in resolved {
                if ws.fns[callee].is_test && !f.is_test {
                    continue; // never edge from real code into test code
                }
                match calls[caller].iter_mut().find(|c| c.callee == callee) {
                    Some(existing) => existing.unique |= unique,
                    None => calls[caller].push(CallSite { callee, line: t.line, unique }),
                }
            }
            i += 1;
        }
    }
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (caller, sites) in calls.iter().enumerate() {
        for site in sites {
            if !callers[site.callee].contains(&caller) {
                callers[site.callee].push(caller);
            }
        }
    }
    CallGraph { calls, callers }
}

/// Resolves the call whose callee identifier sits at token index `i`
/// (caller must have checked that `toks[i]` is an identifier followed by
/// `(`). Returns candidate function ids; empty for definitions and names
/// the workspace does not define.
pub fn resolve_call_at(ws: &Workspace, toks: &[Token], i: usize) -> Vec<usize> {
    let prev = i.checked_sub(1).map(|p| &toks[p]);
    // Skip definitions (`fn name(`); macro bangs never reach here
    // (`name!(` has `!` between name and paren).
    if prev.is_some_and(|p| p.is_ident("fn")) {
        return Vec::new();
    }
    if prev.is_some_and(|p| p.is_punct(".")) {
        resolve_method(ws, &toks[i].text)
    } else if prev.is_some_and(|p| p.is_punct("::")) {
        let qual = i
            .checked_sub(2)
            .map(|q| &toks[q])
            .filter(|q| q.kind == TokKind::Ident)
            .map(|q| q.text.as_str());
        resolve_qualified(ws, qual, &toks[i].text)
    } else {
        resolve_plain(ws, &toks[i].text)
    }
}

/// `recv.name(..)`: every method (fn inside an impl/trait) named `name`.
fn resolve_method(ws: &Workspace, name: &str) -> Vec<usize> {
    ws.by_name
        .get(name)
        .map(|ids| ids.iter().copied().filter(|&id| ws.fns[id].self_type.is_some()).collect())
        .unwrap_or_default()
}

/// `Qual::name(..)`: methods of type `Qual` first, then functions in a
/// module whose last segment is `qual` (e.g. `parallel::parallel_for_rows`),
/// then any function named `name`.
fn resolve_qualified(ws: &Workspace, qual: Option<&str>, name: &str) -> Vec<usize> {
    let Some(ids) = ws.by_name.get(name) else { return Vec::new() };
    if let Some(q) = qual {
        let of_type: Vec<usize> =
            ids.iter().copied().filter(|&id| ws.fns[id].self_type.as_deref() == Some(q)).collect();
        if !of_type.is_empty() {
            return of_type;
        }
        let of_mod: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|&id| ws.fns[id].module.last().map(String::as_str) == Some(q))
            .collect();
        if !of_mod.is_empty() {
            return of_mod;
        }
    }
    ids.clone()
}

/// Bare `name(..)`: free functions named `name`; if none exist anywhere,
/// fall back to every symbol with the name (it may be `Self::`-less
/// associated-fn usage via `use`).
fn resolve_plain(ws: &Workspace, name: &str) -> Vec<usize> {
    let Some(ids) = ws.by_name.get(name) else { return Vec::new() };
    let free: Vec<usize> =
        ids.iter().copied().filter(|&id| ws.fns[id].self_type.is_none()).collect();
    if free.is_empty() {
        ids.clone()
    } else {
        free
    }
}

/// Breadth-first search from `start` over reverse edges (callee → caller),
/// stopping at the first function satisfying `is_root`. Returns the path
/// `[root, .., start]` when one exists. Test functions never appear on the
/// path.
pub fn shortest_path_to_root(
    ws: &Workspace,
    graph: &CallGraph,
    start: usize,
    is_root: impl Fn(usize) -> bool,
) -> Option<Vec<usize>> {
    let n = ws.fns.len();
    let mut pred: Vec<Option<usize>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[start] = true;
    queue.push_back(start);
    while let Some(cur) = queue.pop_front() {
        if is_root(cur) {
            // pred links each visited caller back toward `start`, so
            // following the chain from the root yields [root, .., start].
            let mut path = Vec::new();
            let mut node = Some(cur);
            while let Some(x) = node {
                path.push(x);
                node = pred[x];
            }
            return Some(path);
        }
        for &caller in &graph.callers[cur] {
            if !seen[caller] && !ws.fns[caller].is_test {
                seen[caller] = true;
                pred[caller] = Some(cur);
                queue.push_back(caller);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::from_sources(vec![("crates/core/src/lib.rs".to_string(), src.to_string())])
    }

    fn id(ws: &Workspace, name: &str) -> usize {
        ws.by_name[name][0]
    }

    #[test]
    fn plain_and_method_calls_resolve() {
        let w = ws("fn leaf() {}\nfn caller() { leaf(); }\n\
                    struct S;\nimpl S { fn m(&self) {} }\nfn via_method(s: &S) { s.m(); }");
        let g = build(&w);
        assert!(g.calls[id(&w, "caller")].iter().any(|c| c.callee == id(&w, "leaf")));
        assert!(g.calls[id(&w, "via_method")].iter().any(|c| c.callee == id(&w, "m")));
        assert!(g.callers[id(&w, "leaf")].contains(&id(&w, "caller")));
    }

    #[test]
    fn qualified_calls_prefer_the_named_type() {
        let w = ws("struct A;\nstruct B;\nimpl A { fn go() {} }\nimpl B { fn go() {} }\n\
                    fn f() { A::go(); }");
        let g = build(&w);
        let a_go = w.by_name["go"]
            .iter()
            .copied()
            .find(|&i| w.fns[i].self_type.as_deref() == Some("A"))
            .expect("A::go exists");
        let edges = &g.calls[id(&w, "f")];
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].callee, a_go);
    }

    #[test]
    fn real_code_never_edges_into_tests() {
        let w = ws("fn caller() { helper(); }\n#[cfg(test)]\nmod t { pub fn helper() {} }");
        let g = build(&w);
        assert!(g.calls[id(&w, "caller")].is_empty());
    }

    #[test]
    fn bfs_finds_shortest_witness() {
        let w = ws("pub fn root() { mid(); }\nfn mid() { deep(); }\nfn deep() {}\n\
                    pub fn direct() { deep(); }");
        let g = build(&w);
        let path = shortest_path_to_root(&w, &g, id(&w, "deep"), |f| w.fns[f].is_pub)
            .expect("reachable from a pub fn");
        assert_eq!(path.len(), 2, "direct() -> deep() is the shortest witness");
        assert_eq!(path.last(), Some(&id(&w, "deep")));
        assert!(w.fns[path[0]].is_pub);
    }
}
