//! A lightweight item/block tree parser over the token stream.
//!
//! This is deliberately *not* a full Rust parser: it recovers exactly the
//! structure the analysis passes need — `fn` / `impl` / `mod` / `trait`
//! nesting with token-index body ranges, item names, visibility, and
//! `#[cfg(test)]` inheritance — and skips everything else by balanced
//! delimiter matching. Function bodies are leaves: items nested inside a
//! body (rare outside test modules) are attributed to the enclosing
//! function, which over-approximates its call sites. See DESIGN.md §14 for
//! the full list of approximations.

use crate::lexer::{TokKind, Token};

/// What kind of item an [`Item`] node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn name(..) { .. }` (or a bodiless trait method `fn name(..);`).
    Fn,
    /// `mod name { .. }` (or `mod name;`).
    Mod,
    /// `impl Type { .. }` / `impl Trait for Type { .. }`; `name` is the
    /// self type's last path segment.
    Impl,
    /// `trait Name { .. }`.
    Trait,
}

/// One node of the item tree.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Item name: the `fn`/`mod`/`trait` identifier, or the impl'd type's
    /// last path segment.
    pub name: String,
    /// For `impl Trait for Type`, the trait's last path segment.
    pub trait_name: Option<String>,
    /// True for bare `pub` (restricted forms like `pub(crate)` count as
    /// private: they are not part of the external API surface).
    pub is_pub: bool,
    /// True when the item (or an ancestor) carries `#[test]`/`#[cfg(test)]`.
    pub is_test: bool,
    /// 1-based line of the defining keyword.
    pub line: usize,
    /// Token index of the defining keyword (`fn`, `mod`, ...).
    pub kw: usize,
    /// Signature token range `[kw, body_open)` — for `fn`, covers name,
    /// params, and return type; used to spot `-> MutexGuard` and the like.
    pub sig: (usize, usize),
    /// Token indices of the body's `{` and matching `}` (inclusive), if the
    /// item has a brace body.
    pub body: Option<(usize, usize)>,
    /// Child items (for `mod`/`impl`/`trait` bodies; `fn` bodies are
    /// leaves).
    pub children: Vec<Item>,
}

/// Integer-type identifiers, shared by the passes' crude type inference.
pub const INT_TYPES: &[&str] =
    &["usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128"];

/// Parses a whole file's token stream into a tree of items.
pub fn parse_items(toks: &[Token]) -> Vec<Item> {
    parse_range(toks, 0, toks.len(), false)
}

/// Returns the index of the `}` matching the `{` at `open` (or the last
/// token index when unbalanced — best effort, like the lexer).
pub fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 1usize;
    let mut i = open + 1;
    while i < toks.len() {
        if toks[i].is_punct("{") {
            depth += 1;
        } else if toks[i].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// True when the attribute token slice (between `#[` and `]`) marks test
/// code: `#[test]` or any `#[cfg(..)]` mentioning `test`.
fn is_test_attr(attr: &[&Token]) -> bool {
    match attr.first() {
        Some(t) if t.is_ident("test") => attr.len() == 1,
        Some(t) if t.is_ident("cfg") => attr.iter().any(|t| t.is_ident("test")),
        _ => false,
    }
}

/// Scans from `i` for the first `{` or `;` at paren/bracket depth 0.
/// Returns `(index, is_brace)`; saturates at `hi` for malformed input.
fn find_body_open(toks: &[Token], i: usize, hi: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut j = i;
    while j < hi {
        let t = &toks[j];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth = depth.saturating_sub(1);
        } else if depth == 0 {
            if t.is_punct("{") {
                return (j, true);
            }
            if t.is_punct(";") {
                return (j, false);
            }
        }
        j += 1;
    }
    (hi.saturating_sub(1).max(i), false)
}

/// Skips a balanced `<...>` generic group starting at `open` (which must be
/// `<`). Counts the shift tokens as two angles. Returns the index just past
/// the closing `>`.
fn skip_angles(toks: &[Token], open: usize, hi: usize) -> usize {
    let mut depth = 0isize;
    let mut j = open;
    while j < hi {
        match toks[j].text.as_str() {
            "<" => depth += 1,
            ">" => depth -= 1,
            "<<" => depth += 2,
            ">>" => depth -= 2,
            _ => {}
        }
        j += 1;
        if depth <= 0 {
            break;
        }
    }
    j
}

/// Parses items in the token range `[lo, hi)`; `in_test` marks inherited
/// `#[cfg(test)]` scope.
fn parse_range(toks: &[Token], lo: usize, hi: usize, in_test: bool) -> Vec<Item> {
    let mut items = Vec::new();
    let mut i = lo;
    let mut pending_pub = false;
    let mut pending_test = false;

    let reset = |pp: &mut bool, pt: &mut bool| {
        *pp = false;
        *pt = false;
    };

    while i < hi {
        let t = &toks[i];

        // Attributes: record test-ness, skip the group. `#![..]` inner
        // attributes are skipped the same way.
        if t.is_punct("#") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_punct("!")) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct("[")) {
                let mut depth = 1usize;
                let mut k = j + 1;
                let mut attr: Vec<&Token> = Vec::new();
                while k < hi && depth > 0 {
                    if toks[k].is_punct("[") {
                        depth += 1;
                    } else if toks[k].is_punct("]") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    attr.push(&toks[k]);
                    k += 1;
                }
                pending_test = pending_test || is_test_attr(&attr);
                i = k + 1;
                continue;
            }
            i += 1;
            continue;
        }

        if t.kind != TokKind::Ident {
            i += 1;
            reset(&mut pending_pub, &mut pending_test);
            continue;
        }

        match t.text.as_str() {
            "pub" => {
                if toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
                    // pub(crate) / pub(super): restricted, not external API.
                    let mut depth = 1usize;
                    let mut j = i + 2;
                    while j < hi && depth > 0 {
                        if toks[j].is_punct("(") {
                            depth += 1;
                        } else if toks[j].is_punct(")") {
                            depth -= 1;
                        }
                        j += 1;
                    }
                    i = j;
                } else {
                    pending_pub = true;
                    i += 1;
                }
            }
            // Transparent qualifiers before `fn`/`impl`.
            "unsafe" | "async" => i += 1,
            "const" | "extern" if next_item_kw_is_fn(toks, i + 1, hi) => i += 1,
            "fn" => {
                let name =
                    toks.get(i + 1).filter(|n| n.kind == TokKind::Ident).map(|n| n.text.clone());
                let (open, is_brace) = find_body_open(toks, i + 1, hi);
                let body = if is_brace { Some((open, match_brace(toks, open))) } else { None };
                items.push(Item {
                    kind: ItemKind::Fn,
                    name: name.unwrap_or_default(),
                    trait_name: None,
                    is_pub: pending_pub,
                    is_test: in_test || pending_test,
                    line: t.line,
                    kw: i,
                    sig: (i, open),
                    body,
                    children: Vec::new(),
                });
                i = body.map_or(open + 1, |(_, close)| close + 1);
                reset(&mut pending_pub, &mut pending_test);
            }
            "mod" => {
                let name =
                    toks.get(i + 1).filter(|n| n.kind == TokKind::Ident).map(|n| n.text.clone());
                let (open, is_brace) = find_body_open(toks, i + 1, hi);
                let test = in_test || pending_test;
                let (body, children) = if is_brace {
                    let close = match_brace(toks, open);
                    (Some((open, close)), parse_range(toks, open + 1, close, test))
                } else {
                    (None, Vec::new())
                };
                items.push(Item {
                    kind: ItemKind::Mod,
                    name: name.unwrap_or_default(),
                    trait_name: None,
                    is_pub: pending_pub,
                    is_test: test,
                    line: t.line,
                    kw: i,
                    sig: (i, open),
                    body,
                    children,
                });
                i = body.map_or(open + 1, |(_, close)| close + 1);
                reset(&mut pending_pub, &mut pending_test);
            }
            "impl" => {
                let (type_name, trait_name, open) = parse_impl_header(toks, i + 1, hi);
                let test = in_test || pending_test;
                let close = match_brace(toks, open);
                let children = parse_range(toks, open + 1, close, test);
                items.push(Item {
                    kind: ItemKind::Impl,
                    name: type_name,
                    trait_name,
                    is_pub: false,
                    is_test: test,
                    line: t.line,
                    kw: i,
                    sig: (i, open),
                    body: Some((open, close)),
                    children,
                });
                i = close + 1;
                reset(&mut pending_pub, &mut pending_test);
            }
            "trait" => {
                let name =
                    toks.get(i + 1).filter(|n| n.kind == TokKind::Ident).map(|n| n.text.clone());
                let (open, is_brace) = find_body_open(toks, i + 1, hi);
                let test = in_test || pending_test;
                let (body, children) = if is_brace {
                    let close = match_brace(toks, open);
                    (Some((open, close)), parse_range(toks, open + 1, close, test))
                } else {
                    (None, Vec::new())
                };
                items.push(Item {
                    kind: ItemKind::Trait,
                    name: name.unwrap_or_default(),
                    trait_name: None,
                    is_pub: pending_pub,
                    is_test: test,
                    line: t.line,
                    kw: i,
                    sig: (i, open),
                    body,
                    children,
                });
                i = body.map_or(open + 1, |(_, close)| close + 1);
                reset(&mut pending_pub, &mut pending_test);
            }
            // Items we only need to skip correctly.
            "struct" | "enum" | "union" | "macro_rules" => {
                let (open, is_brace) = find_body_open(toks, i + 1, hi);
                i = if is_brace { match_brace(toks, open) + 1 } else { open + 1 };
                reset(&mut pending_pub, &mut pending_test);
            }
            "use" | "type" | "static" | "const" | "extern" => {
                let (open, is_brace) = find_body_open(toks, i + 1, hi);
                // `extern "C" { .. }` blocks have a brace body; the rest
                // end at `;`.
                i = if is_brace { match_brace(toks, open) + 1 } else { open + 1 };
                reset(&mut pending_pub, &mut pending_test);
            }
            _ => {
                i += 1;
                reset(&mut pending_pub, &mut pending_test);
            }
        }
    }
    items
}

/// True when the item keyword after qualifier position `i` is `fn` (so
/// `const fn` / `extern "C" fn` are qualifiers, not items).
fn next_item_kw_is_fn(toks: &[Token], i: usize, hi: usize) -> bool {
    let mut j = i;
    while j < hi {
        let t = &toks[j];
        if t.kind == TokKind::Str || t.is_ident("unsafe") || t.is_ident("async") {
            j += 1;
            continue;
        }
        return t.is_ident("fn");
    }
    false
}

/// Parses an `impl` header starting just past the `impl` keyword: skips the
/// generic parameter list, then reads path segments until the body `{`,
/// tracking the last segment before/after `for` and stopping at `where`.
/// Returns `(type_name, trait_name, body_open_index)`.
fn parse_impl_header(toks: &[Token], i: usize, hi: usize) -> (String, Option<String>, usize) {
    let mut j = i;
    if toks.get(j).is_some_and(|t| t.text == "<") {
        j = skip_angles(toks, j, hi);
    }
    let mut first = String::new(); // trait (if `for` appears) or the type
    let mut second: Option<String> = None; // type, when `for` appeared
    let mut saw_for = false;
    let mut in_where = false;
    while j < hi {
        let t = &toks[j];
        if t.is_punct("{") {
            let name = second.clone().unwrap_or_else(|| first.clone());
            let trait_name = if saw_for { Some(first) } else { None };
            return (name, trait_name, j);
        }
        if !in_where {
            if t.is_ident("for") {
                saw_for = true;
                second = Some(String::new());
            } else if t.is_ident("where") {
                in_where = true;
            } else if t.text == "<" {
                j = skip_angles(toks, j, hi);
                continue;
            } else if t.kind == TokKind::Ident && !t.is_ident("dyn") && !t.is_ident("mut") {
                match &mut second {
                    Some(s) if saw_for => *s = t.text.clone(),
                    _ => first = t.text.clone(),
                }
            }
        }
        j += 1;
    }
    (
        second.unwrap_or(first.clone()),
        if saw_for { Some(first) } else { None },
        hi.saturating_sub(1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<Item> {
        parse_items(&lex(src))
    }

    #[test]
    fn top_level_fns_with_bodies_and_vis() {
        let items = parse("pub fn a() -> u8 { 1 }\nfn b() {}\npub(crate) fn c() {}");
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].name, "a");
        assert!(items[0].is_pub);
        assert!(items[0].body.is_some());
        assert!(!items[1].is_pub);
        assert!(!items[2].is_pub, "pub(crate) is not external API");
    }

    #[test]
    fn impl_blocks_nest_methods_with_type_name() {
        let items = parse(
            "struct S;\nimpl S { pub fn m(&self) {} fn p(&self) {} }\n\
             impl Clone for S { fn clone(&self) -> S { S } }",
        );
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].kind, ItemKind::Impl);
        assert_eq!(items[0].name, "S");
        assert_eq!(items[0].children.len(), 2);
        assert!(items[0].children[0].is_pub);
        assert_eq!(items[1].trait_name.as_deref(), Some("Clone"));
        assert_eq!(items[1].name, "S");
    }

    #[test]
    fn generic_impl_headers_resolve_the_self_type() {
        let items = parse("impl<T: Clone> Wrap<T> where T: Send { fn get(&self) {} }");
        assert_eq!(items[0].name, "Wrap");
        assert_eq!(items[0].children.len(), 1);
        let items = parse("impl<'a> Iterator for Iter<'a> { fn next(&mut self) {} }");
        assert_eq!(items[0].name, "Iter");
        assert_eq!(items[0].trait_name.as_deref(), Some("Iterator"));
    }

    #[test]
    fn cfg_test_marks_whole_subtree() {
        let items =
            parse("#[cfg(test)]\nmod tests { fn helper() {} #[test] fn t() {} }\npub fn real() {}");
        assert_eq!(items[0].kind, ItemKind::Mod);
        assert!(items[0].is_test);
        assert!(items[0].children.iter().all(|c| c.is_test));
        assert!(!items[1].is_test);
    }

    #[test]
    fn fn_bodies_are_leaves_and_braces_balance() {
        let items = parse("fn outer() { if x { y(); } match z { _ => {} } }\nfn after() {}");
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].name, "after");
    }

    #[test]
    fn struct_enum_use_and_consts_are_skipped() {
        let items = parse(
            "use std::fmt;\nconst N: usize = 3;\nstruct P(u8);\nenum E { A, B }\n\
             static S: u8 = 0;\ntype T = u8;\npub fn real() {}",
        );
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "real");
    }

    #[test]
    fn trait_decls_keep_bodiless_methods() {
        let items = parse("pub trait T { fn req(&self); fn prov(&self) {} }");
        assert_eq!(items[0].kind, ItemKind::Trait);
        assert_eq!(items[0].children.len(), 2);
        assert!(items[0].children[0].body.is_none());
        assert!(items[0].children[1].body.is_some());
    }

    #[test]
    fn mod_without_body_and_nested_mods() {
        let items = parse("mod decl;\nmod a { mod b { fn f() {} } }");
        assert_eq!(items[0].body, None);
        assert_eq!(items[1].children[0].children[0].name, "f");
    }
}
