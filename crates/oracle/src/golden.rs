//! Byte-exact golden fixtures pinning the model outputs across PRs.
//!
//! A fixture is a small self-contained text file under `tests/golden/`: the
//! config, schema, and entity pairs it was computed from, plus the expected
//! logits, attention rows, and losses of the *untrained* model at the
//! config's seed (initialization is deterministic, so no training is needed
//! to pin the full Eq. 3–10 path). Expected values are stored as `f32` bit
//! patterns and compared bit-for-bit: any drift — kernel reorderings, fused
//! ops, encoder changes — fails the suite until deliberately re-blessed with
//! `cargo run -p adamel-oracle --bin golden -- --bless`.
//!
//! The pairs are serialized *into* the fixture and read back for evaluation,
//! so regenerating the synthetic worlds differently does not invalidate old
//! fixtures; only the math stack under test does.

use crate::modelref::{encode_pairs_ref, ModelOracle};
use crate::refmat::RefMatrix;
use adamel::{AdamelConfig, AdamelModel};
use adamel_schema::{EntityPair, FeatureMode, Record, Schema, SourceId};
use adamel_tensor::{Graph, Matrix};
use std::path::PathBuf;

const MAGIC: &str = "adamel-golden v1";

/// A fixture failed to parse or verify.
#[derive(Debug, Clone)]
pub struct FixtureError(pub String);

impl std::fmt::Display for FixtureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for FixtureError {}

fn err(msg: impl Into<String>) -> FixtureError {
    FixtureError(msg.into())
}

/// One golden fixture: inputs plus expected bit patterns.
#[derive(Debug, Clone)]
pub struct Fixture {
    /// Fixture name; the file is `tests/golden/<name>.golden`.
    pub name: String,
    /// Model configuration the expectations were computed under.
    pub cfg: AdamelConfig,
    /// Aligned schema.
    pub schema: Schema,
    /// The serialized evaluation pairs.
    pub pairs: Vec<EntityPair>,
    /// Expected logits, `n` bit patterns.
    pub logits_bits: Vec<u32>,
    /// Expected attention rows, `n * F` bit patterns (row-major).
    pub attention_bits: Vec<u32>,
    /// Expected `L_base` (Eq. 8) bit pattern.
    pub loss_base_bits: u32,
    /// Expected `L_un` (Eq. 10, self-targeted KL) bit pattern.
    pub loss_zero_bits: u32,
}

/// The repository's `tests/golden/` directory.
pub fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn mode_tag(mode: FeatureMode) -> &'static str {
    match mode {
        FeatureMode::SharedOnly => "shared",
        FeatureMode::UniqueOnly => "unique",
        FeatureMode::Both => "both",
    }
}

fn mode_from_tag(tag: &str) -> Result<FeatureMode, FixtureError> {
    match tag {
        "shared" => Ok(FeatureMode::SharedOnly),
        "unique" => Ok(FeatureMode::UniqueOnly),
        "both" => Ok(FeatureMode::Both),
        other => Err(err(format!("unknown feature mode {other}"))),
    }
}

/// Whitespace-safe escaping so attribute names and values survive the
/// token-per-word file format.
fn escape(s: &str) -> String {
    if s.is_empty() {
        return "\\0".to_string();
    }
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\s"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, FixtureError> {
    if s == "\\0" {
        return Ok(String::new());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('s') => out.push(' '),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            other => return Err(err(format!("bad escape \\{other:?}"))),
        }
    }
    Ok(out)
}

/// The expected outputs of one fixture evaluation, as bit patterns.
struct Expected {
    logits: Vec<u32>,
    attention: Vec<u32>,
    loss_base: u32,
    loss_zero: u32,
}

/// Evaluates the production stack on a fixture's inputs: one monolithic
/// forward graph, `L_base` over the pair labels, and the self-targeted
/// zero-shot loss `(1-λ)·L_base + λ·KL(mean f(x) || f(x_i))` — composed with
/// the same graph ops training uses, so the bits match the training path.
fn evaluate(cfg: &AdamelConfig, schema: &Schema, pairs: &[EntityPair]) -> Expected {
    let model = AdamelModel::new(cfg.clone(), schema.clone());
    let encoded = model.encode(pairs);
    let mut g = Graph::new();
    let (att, logits) = model.forward_graph(&mut g, encoded);
    let labels: Vec<f32> =
        pairs.iter().map(|p| if p.label == Some(true) { 1.0 } else { 0.0 }).collect();
    let y = Matrix::from_vec(labels.len(), 1, labels);
    let base = g.bce_with_logits(logits, y);
    let mean = g.value(att).mean_rows();
    let kl = g.kl_const_rows(att, mean, 1e-7);
    let base_term = g.scale(base, 1.0 - cfg.lambda);
    let kl_term = g.scale(kl, cfg.lambda);
    let zero = g.add(base_term, kl_term);
    Expected {
        logits: g.value(logits).as_slice().iter().map(|v| v.to_bits()).collect(),
        attention: g.value(att).as_slice().iter().map(|v| v.to_bits()).collect(),
        loss_base: g.value(base).item().to_bits(),
        loss_zero: g.value(zero).item().to_bits(),
    }
}

impl Fixture {
    /// Computes a fixture's expectations from its inputs (the bless path).
    pub fn compute(
        name: impl Into<String>,
        cfg: AdamelConfig,
        schema: Schema,
        pairs: Vec<EntityPair>,
    ) -> Fixture {
        assert!(!pairs.is_empty(), "Fixture::compute: empty pair set");
        let expected = evaluate(&cfg, &schema, &pairs);
        Fixture {
            name: name.into(),
            cfg,
            schema,
            pairs,
            logits_bits: expected.logits,
            attention_bits: expected.attention,
            loss_base_bits: expected.loss_base,
            loss_zero_bits: expected.loss_zero,
        }
    }

    /// Renders the fixture file.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        let cfg = &self.cfg;
        out.push_str(&format!(
            "config {} {} {} {} {} {} {} {} {:08x}\n",
            cfg.embed_dim,
            cfg.feature_dim,
            cfg.attention_dim,
            cfg.hidden_dim,
            cfg.crop,
            mode_tag(cfg.feature_mode),
            cfg.seed,
            u8::from(cfg.uniform_attention),
            cfg.lambda.to_bits(),
        ));
        out.push_str(&format!("schema {}\n", self.schema.attributes().join(" ")));
        out.push_str(&format!("pairs {}\n", self.pairs.len()));
        for p in &self.pairs {
            let label = match p.label {
                Some(true) => "1",
                Some(false) => "0",
                None => "?",
            };
            out.push_str(&format!(
                "pair {label} {} {} {} {}\n",
                p.left.source.0, p.left.entity_id, p.right.source.0, p.right.entity_id
            ));
            for (side, rec) in [("la", &p.left), ("ra", &p.right)] {
                for (k, v) in &rec.values {
                    out.push_str(&format!("{side} {} {}\n", escape(k), escape(v)));
                }
            }
            out.push_str("end\n");
        }
        let hex = |bits: &[u32]| -> String {
            bits.iter().map(|b| format!("{b:08x}")).collect::<Vec<_>>().join(" ")
        };
        let f = self.schema.len() * self.cfg.feature_mode.per_attribute();
        out.push_str(&format!("logits {} {}\n", self.logits_bits.len(), hex(&self.logits_bits)));
        out.push_str(&format!(
            "attention {} {} {}\n",
            self.pairs.len(),
            f,
            hex(&self.attention_bits)
        ));
        out.push_str(&format!("loss_base {:08x}\n", self.loss_base_bits));
        out.push_str(&format!("loss_zero {:08x}\n", self.loss_zero_bits));
        out
    }

    /// Parses a fixture file written by [`serialize`](Self::serialize).
    pub fn parse(name: impl Into<String>, text: &str) -> Result<Fixture, FixtureError> {
        let mut lines = text.lines();
        let mut next = || lines.next().ok_or_else(|| err("unexpected end of fixture"));
        if next()? != MAGIC {
            return Err(err("not an adamel golden fixture"));
        }

        let config_line = next()?.to_string();
        let parts: Vec<&str> = config_line.split_whitespace().collect();
        if parts.len() != 10 || parts[0] != "config" {
            return Err(err("malformed config line"));
        }
        let p = |i: usize| -> Result<usize, FixtureError> {
            parts[i].parse().map_err(|_| err("bad integer in config"))
        };
        let mut cfg = AdamelConfig::tiny();
        cfg.embed_dim = p(1)?;
        cfg.feature_dim = p(2)?;
        cfg.attention_dim = p(3)?;
        cfg.hidden_dim = p(4)?;
        cfg.crop = p(5)?;
        cfg.feature_mode = mode_from_tag(parts[6])?;
        cfg.seed = parts[7].parse().map_err(|_| err("bad seed"))?;
        cfg.uniform_attention = parts[8] == "1";
        cfg.lambda =
            f32::from_bits(u32::from_str_radix(parts[9], 16).map_err(|_| err("bad lambda bits"))?);

        let schema_line = next()?.to_string();
        let attrs: Vec<String> = schema_line
            .strip_prefix("schema ")
            .ok_or_else(|| err("malformed schema line"))?
            .split_whitespace()
            .map(str::to_owned)
            .collect();
        if attrs.is_empty() {
            return Err(err("empty schema"));
        }
        let schema = Schema::new(attrs);

        let count: usize = next()?
            .strip_prefix("pairs ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err("malformed pairs line"))?;
        let mut pairs = Vec::with_capacity(count);
        for _ in 0..count {
            let head = next()?.to_string();
            let toks: Vec<&str> = head.split_whitespace().collect();
            if toks.len() != 6 || toks[0] != "pair" {
                return Err(err("malformed pair line"));
            }
            let label = match toks[1] {
                "1" => Some(true),
                "0" => Some(false),
                "?" => None,
                other => return Err(err(format!("bad label {other}"))),
            };
            let pu32 = |t: &str| -> Result<u32, FixtureError> {
                t.parse().map_err(|_| err("bad source id"))
            };
            let pu64 = |t: &str| -> Result<u64, FixtureError> {
                t.parse().map_err(|_| err("bad entity id"))
            };
            let mut left = Record::new(SourceId(pu32(toks[2])?), pu64(toks[3])?);
            let mut right = Record::new(SourceId(pu32(toks[4])?), pu64(toks[5])?);
            loop {
                let line = next()?.to_string();
                if line == "end" {
                    break;
                }
                let t: Vec<&str> = line.split_whitespace().collect();
                if t.len() != 3 {
                    return Err(err("malformed attribute line"));
                }
                let (attr, value) = (unescape(t[1])?, unescape(t[2])?);
                match t[0] {
                    "la" => left.set(attr, value),
                    "ra" => right.set(attr, value),
                    other => return Err(err(format!("bad attribute side {other}"))),
                };
            }
            pairs.push(EntityPair { left, right, label });
        }

        let parse_bits = |line: &str, tag: &str, skip: usize| -> Result<Vec<u32>, FixtureError> {
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.first() != Some(&tag) {
                return Err(err(format!("expected {tag} line")));
            }
            toks[1 + skip..]
                .iter()
                .map(|t| u32::from_str_radix(t, 16).map_err(|_| err(format!("bad {tag} bits"))))
                .collect()
        };
        let logits_line = next()?.to_string();
        let logits_bits = parse_bits(&logits_line, "logits", 1)?;
        let attention_line = next()?.to_string();
        let attention_bits = parse_bits(&attention_line, "attention", 2)?;
        let base_line = next()?.to_string();
        let loss_base_bits =
            *parse_bits(&base_line, "loss_base", 0)?.first().ok_or_else(|| err("empty loss"))?;
        let zero_line = next()?.to_string();
        let loss_zero_bits =
            *parse_bits(&zero_line, "loss_zero", 0)?.first().ok_or_else(|| err("empty loss"))?;

        Ok(Fixture {
            name: name.into(),
            cfg,
            schema,
            pairs,
            logits_bits,
            attention_bits,
            loss_base_bits,
            loss_zero_bits,
        })
    }

    /// Recomputes the expectations from the stored inputs and compares them
    /// bit-for-bit, then cross-checks the stored values against the `f64`
    /// oracle at model-level tolerance.
    pub fn verify(&self) -> Result<(), FixtureError> {
        let expected = evaluate(&self.cfg, &self.schema, &self.pairs);
        let diff = |what: &str, got: &[u32], want: &[u32]| -> Result<(), FixtureError> {
            if got.len() != want.len() {
                return Err(err(format!(
                    "{}: {what} length changed ({} vs {})",
                    self.name,
                    got.len(),
                    want.len()
                )));
            }
            for (i, (g, w)) in got.iter().zip(want).enumerate() {
                if g != w {
                    return Err(err(format!(
                        "{}: {what}[{i}] drifted: {:e} (bits {g:08x}) vs blessed {:e} \
                         (bits {w:08x}); re-bless only if the change is intended",
                        self.name,
                        f32::from_bits(*g),
                        f32::from_bits(*w)
                    )));
                }
            }
            Ok(())
        };
        diff("logits", &expected.logits, &self.logits_bits)?;
        diff("attention", &expected.attention, &self.attention_bits)?;
        diff("loss_base", &[expected.loss_base], &[self.loss_base_bits])?;
        diff("loss_zero", &[expected.loss_zero], &[self.loss_zero_bits])?;
        self.oracle_check()
    }

    /// Asserts the blessed values are *plausible* per the `f64` oracle — a
    /// defense against blessing a broken stack.
    fn oracle_check(&self) -> Result<(), FixtureError> {
        let model = AdamelModel::new(self.cfg.clone(), self.schema.clone());
        let oracle = ModelOracle::new(&model);
        let enc = encode_pairs_ref(&self.schema, &self.cfg, &self.pairs);
        let fwd = oracle.forward(&enc);
        for (i, &bits) in self.logits_bits.iter().enumerate() {
            let blessed = f64::from(f32::from_bits(bits));
            let reference = fwd.logits.get(i, 0);
            if (blessed - reference).abs() > 1e-3 * blessed.abs().max(reference.abs()).max(1.0) {
                return Err(err(format!(
                    "{}: blessed logit {i} = {blessed:e} disagrees with oracle {reference:e}",
                    self.name
                )));
            }
        }
        let att = RefMatrix::from_f32(
            self.pairs.len(),
            fwd.attention.cols(),
            &self.attention_bits.iter().map(|&b| f32::from_bits(b)).collect::<Vec<_>>(),
        );
        for i in 0..att.rows() {
            for j in 0..att.cols() {
                let d = (att.get(i, j) - fwd.attention.get(i, j)).abs();
                if d > 1e-3 {
                    return Err(err(format!(
                        "{}: blessed attention ({i},{j}) off oracle by {d:e}",
                        self.name
                    )));
                }
            }
        }
        Ok(())
    }
}

/// The fixtures the repository pins, recomputed by `--bless`. Pairs come
/// from the deterministic music world generator but are snapshotted into the
/// fixture files, so later generator changes do not disturb old fixtures.
pub fn builtin_fixtures() -> Vec<Fixture> {
    use adamel_data::{make_mel_split, EntityType, MusicConfig, MusicWorld, Scenario, SplitCounts};
    let world = MusicWorld::generate(&MusicConfig::tiny(), 5);
    let records = world.records_of(EntityType::Artist, None);
    let split = make_mel_split(
        &records,
        "name",
        &[0, 1, 2],
        &[3, 4, 5, 6],
        Scenario::Overlapping,
        &SplitCounts::tiny(),
        1,
    );
    let schema = world.schema().clone();
    let take = |pairs: &[EntityPair], n: usize| -> Vec<EntityPair> {
        pairs.iter().take(n).cloned().collect()
    };

    let default_pairs = take(&split.train.pairs, 10);
    let uniform_pairs = take(&split.support.pairs, 6);
    vec![
        Fixture::compute("music_tiny_both", AdamelConfig::tiny(), schema.clone(), default_pairs),
        Fixture::compute(
            "music_tiny_shared_uniform",
            AdamelConfig::tiny()
                .with_seed(11)
                .with_feature_mode(FeatureMode::SharedOnly)
                .with_uniform_attention(true),
            schema,
            uniform_pairs,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialize_parse_round_trips() {
        for fixture in builtin_fixtures() {
            let text = fixture.serialize();
            let parsed = Fixture::parse(fixture.name.clone(), &text).expect("round trip parses");
            assert_eq!(parsed.serialize(), text, "{} round trip", fixture.name);
            parsed.verify().expect("freshly computed fixture verifies");
        }
    }

    #[test]
    fn escape_round_trips_awkward_strings() {
        for s in ["", "a b", "tab\there", "line\nbreak", "back\\slash", "\\s literal"] {
            assert_eq!(unescape(&escape(s)).expect("escape output parses"), s);
        }
    }

    #[test]
    fn corrupted_expectation_is_detected() {
        let mut fixture = builtin_fixtures().remove(0);
        fixture.logits_bits[0] ^= 1; // one ULP of drift
        let e = fixture.verify().expect_err("bit drift must fail verification");
        assert!(e.0.contains("drifted"), "unexpected message: {e}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Fixture::parse("x", "nope\n").is_err());
    }
}
