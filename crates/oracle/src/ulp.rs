//! ULP distances and per-op acceptance budgets.
//!
//! The differential harness compares a production `f32` value against the
//! `f64` oracle's result rounded to the nearest `f32`. The comparison accepts
//! when **either**
//!
//! * the two `f32` values are within the op's ULP budget, or
//! * the absolute difference is within the op's rounding-error bound, which
//!   for reductions is proportional to the sum of absolute addends
//!   (`k·ε₃₂·Σ|terms|`) — the standard forward-error bound that stays valid
//!   under catastrophic cancellation, where a pure ULP budget on the (tiny)
//!   result would reject legitimate `f32` arithmetic.
//!
//! Budgets are deliberately tight (see the table in DESIGN.md §10): the
//! elementwise ops must be *exactly* rounded, so their budget is 0 ULP.

/// `f32` machine epsilon as `f64` (2⁻²³), the unit of rounding-error bounds.
pub const EPS32: f64 = 1.1920928955078125e-7;

/// Maps a float onto a monotone integer line so that adjacent representable
/// floats differ by exactly 1 (standard ordered-bits trick).
fn monotone(x: f32) -> i64 {
    let b = i64::from(x.to_bits() as i32);
    if b < 0 {
        // Negative floats: bigger magnitude means bigger signed bits, so
        // reflect them below zero. Both zeros land on 0.
        i64::from(i32::MIN) - b
    } else {
        b
    }
}

/// Number of representable `f32` values between `a` and `b` (0 when equal;
/// `u64::MAX` when either is NaN or they differ in finiteness).
pub fn ulp_distance(a: f32, b: f32) -> u64 {
    if a.is_nan() || b.is_nan() || a.is_finite() != b.is_finite() {
        return u64::MAX;
    }
    if a == b {
        // Covers +0.0 / -0.0, which are 0 ULP apart by convention.
        return 0;
    }
    monotone(a).abs_diff(monotone(b))
}

/// Acceptance budget for one comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budget {
    /// Maximum ULP distance between the production value and the rounded
    /// oracle value.
    pub ulps: u64,
    /// Absolute-error fallback: accept when `|prod − oracle| ≤ abs`. Encodes
    /// the `k·ε₃₂·scale` rounding bound of reductions; 0.0 for elementwise
    /// ops, which must round exactly.
    pub abs: f64,
}

impl Budget {
    /// A budget with no absolute-error fallback.
    pub fn ulps(ulps: u64) -> Self {
        Self { ulps, abs: 0.0 }
    }

    /// True when `prod` is an acceptable `f32` realization of `oracle`.
    pub fn accepts(&self, prod: f32, oracle: f64) -> bool {
        if prod.is_nan() || !oracle.is_finite() {
            return false;
        }
        ulp_distance(prod, oracle as f32) <= self.ulps
            || (f64::from(prod) - oracle).abs() <= self.abs
    }
}

/// The per-op ULP budget table (`reduce_len` is the length of the op's inner
/// reduction: `k` for matmul, the column count for softmax, the element count
/// for global reductions; 0 for elementwise ops).
///
/// | op | budget | why |
/// |----|--------|-----|
/// | add, mul, scale, relu, broadcasts, concat, slice | 0 ULP | single correctly-rounded `f32` op |
/// | tanh, sigmoid | 8 ULP | libm `tanh`/`exp` are faithful, not correctly rounded |
/// | softmax row of m | 8 + 2m ULP | exp per element + m-term sum + divide |
/// | matmul k | 2k + 4 + 2·⌈k/KC⌉ ULP | k-term dot + one join per KC panel |
/// | sum/mean over n | 2n + 4 ULP | n-term `f32` accumulation |
/// | bce / kl over n | 4n + 32 ULP | exp/ln per term plus the n-term sum |
///
/// Reductions additionally get the absolute bound through
/// [`reduction_budget`]; this function alone is the pure ULP part.
pub fn op_ulps(op: &str, reduce_len: usize) -> u64 {
    let n = reduce_len as u64;
    match op {
        "constant" | "param" | "leaf" => 0,
        "add" | "mul" | "scale" | "relu" | "add_row_broadcast" | "mul_col_broadcast"
        | "concat_cols" | "slice_cols" => 0,
        "tanh" | "sigmoid" => 8,
        "softmax_rows" => 8 + 2 * n,
        // The blocked GEMM kernels accumulate each output element in strictly
        // ascending-k order and are today *bit-identical* to the historical
        // naive loops, so a plain `2k + 4` dot-product bound still holds
        // empirically. The extra `2·⌈k/KC⌉` term is a deliberate widening
        // that licenses per-KC-panel reassociation (partial sums joined once
        // per panel) — the documented direction for future SIMD/FMA kernels
        // (DESIGN.md §15) — without requiring another budget change.
        "matmul" | "matmul_tn" | "matmul_nt" => {
            2 * n + 4 + 2 * (reduce_len.div_ceil(adamel_tensor::gemm::KC) as u64)
        }
        "sum_all" | "mean_all" => 2 * n + 4,
        "weighted_bce_with_logits" | "kl_const_rows" => 4 * n + 32,
        // Unknown op names get the strictest budget: a typo at a call site
        // then fails the diff loudly instead of silently loosening it.
        _ => 0,
    }
}

/// Budget for a `reduce_len`-term reduction whose absolute addends sum to
/// `abs_scale`: the ULP part from [`op_ulps`] plus the forward-error bound
/// `(reduce_len + 4) · ε₃₂ · abs_scale`, which covers cancellation.
pub fn reduction_budget(op: &str, reduce_len: usize, abs_scale: f64) -> Budget {
    Budget { ulps: op_ulps(op, reduce_len), abs: (reduce_len as f64 + 4.0) * EPS32 * abs_scale }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_floats_are_one_ulp() {
        let a = 1.0f32;
        let b = f32::from_bits(a.to_bits() + 1);
        assert_eq!(ulp_distance(a, b), 1);
        assert_eq!(ulp_distance(b, a), 1);
    }

    #[test]
    fn distance_crosses_zero() {
        let a = f32::from_bits(1); // smallest positive subnormal
        let b = -f32::from_bits(1);
        assert_eq!(ulp_distance(a, b), 2);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
    }

    #[test]
    fn nan_and_infinity_are_infinitely_far() {
        assert_eq!(ulp_distance(f32::NAN, 1.0), u64::MAX);
        assert_eq!(ulp_distance(f32::INFINITY, 1.0), u64::MAX);
    }

    #[test]
    fn budget_accepts_within_ulps() {
        let b = Budget::ulps(2);
        let x = 1.0f32;
        let y = f32::from_bits(x.to_bits() + 2);
        assert!(b.accepts(y, 1.0));
        let z = f32::from_bits(x.to_bits() + 3);
        assert!(!b.accepts(z, 1.0));
    }

    #[test]
    fn absolute_fallback_covers_cancellation() {
        // Result near zero but bound scaled to the addends.
        let b = reduction_budget("sum_all", 4, 1.0e4);
        assert!(b.accepts(1.0e-3, 0.0));
        assert!(!b.accepts(1.0, 0.0));
    }

    #[test]
    fn exact_ops_have_zero_budget() {
        assert_eq!(op_ulps("add", 0), 0);
        // 2k + 4, plus 2 per KC panel (one panel at k = 3).
        assert_eq!(op_ulps("matmul", 3), 12);
        // Two panels once k crosses KC.
        let kc = adamel_tensor::gemm::KC;
        assert_eq!(op_ulps("matmul_tn", kc + 1), 2 * (kc as u64 + 1) + 4 + 4);
    }
}
