//! `adamel-oracle`: a deliberately naive, obviously-correct `f64` reference
//! implementation of the AdaMEL math stack, plus the differential-testing
//! harness built on top of it.
//!
//! The oracle answers one question for every later optimization PR: *does the
//! fast path still compute the right numbers?* It does so in three layers:
//!
//! 1. [`RefMatrix`] — textbook `f64` kernels (no parallelism, no fusion, no
//!    zero-skipping) mirroring every production tensor op.
//! 2. [`Program`] — seeded random tape programs whose production forward and
//!    backward passes are diffed per-op against the oracle within the ULP
//!    budgets of [`ulp`], with gradients checked against oracle finite
//!    differences. Failing programs shrink to minimal paste-able reproducers.
//! 3. [`modelref`] / [`golden`] — the paper equations (Eq. 3–10) re-derived
//!    end-to-end in `f64`, and byte-exact golden fixtures under
//!    `tests/golden/` that pin the model outputs across PRs.
//!
//! See DESIGN.md §10 for the budget table and the bless workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod golden;
pub mod modelref;
pub mod prauc;
pub mod program;
pub mod refmat;
pub mod ulp;

pub use golden::{Fixture, FixtureError};
pub use modelref::{
    bce_ref, encode_pairs_ref, kl_ref, support_weights_ref, weighted_bce_ref, zero_loss_ref,
    ModelOracle, RefForward,
};
pub use prauc::{pr_auc_ref, pr_curve_ref, RefPrPoint};
pub use program::{
    check_program, check_with_fault, eval_oracle_root, gen_program, gen_program_with,
    render_reproducer, shrink, Discrepancy, Fault, GenOptions, Inst, Program,
};
pub use refmat::RefMatrix;
pub use ulp::{op_ulps, reduction_budget, ulp_distance, Budget, EPS32};
