//! Golden-fixture manager.
//!
//! Default mode verifies every `tests/golden/*.golden` fixture bit-for-bit
//! against a fresh evaluation of the current math stack and exits non-zero on
//! drift. `--bless` recomputes the builtin fixture set and rewrites the
//! files; run it only when an output change is intended, and commit the diff.
//!
//! ```text
//! cargo run -p adamel-oracle --bin golden            # verify
//! cargo run -p adamel-oracle --bin golden -- --bless # regenerate
//! ```

use adamel_oracle::golden::{builtin_fixtures, fixture_dir};
use adamel_oracle::Fixture;
use std::process::ExitCode;

fn bless() -> std::io::Result<()> {
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir)?;
    for fixture in builtin_fixtures() {
        let path = dir.join(format!("{}.golden", fixture.name));
        std::fs::write(&path, fixture.serialize())?;
        println!("blessed {}", path.display());
    }
    Ok(())
}

fn verify() -> std::io::Result<bool> {
    let dir = fixture_dir();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "golden"))
        .collect();
    entries.sort();
    if entries.is_empty() {
        eprintln!("no fixtures under {}; run with --bless first", dir.display());
        return Ok(false);
    }
    let mut ok = true;
    for path in entries {
        let name = path.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default();
        let text = std::fs::read_to_string(&path)?;
        match Fixture::parse(name.clone(), &text).and_then(|f| {
            f.verify()?;
            Ok(())
        }) {
            Ok(()) => println!("ok {name}"),
            Err(e) => {
                eprintln!("FAIL {name}: {e}");
                ok = false;
            }
        }
    }
    if !ok {
        eprintln!(
            "golden drift detected; if intended, run\n  cargo run -p adamel-oracle --bin golden \
             -- --bless\nand commit the updated fixtures"
        );
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--bless") => match bless() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("golden: {e}");
                ExitCode::FAILURE
            }
        },
        None => match verify() {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("golden: {e}");
                ExitCode::FAILURE
            }
        },
        Some(other) => {
            eprintln!("golden: unknown flag {other} (only --bless is supported)");
            ExitCode::FAILURE
        }
    }
}
