//! Std-only fuzz driver for the differential oracle.
//!
//! Generates seeded random tape programs, checks the production forward and
//! backward passes against the `f64` oracle, and on the first discrepancy
//! shrinks the program to a minimal reproducer printed as a paste-able test.
//!
//! ```text
//! cargo run -p adamel-oracle --bin fuzz -- --iters 500 --seed 42 --size 12
//! ```

use adamel_oracle::{check_program, gen_program_with, render_reproducer, shrink, GenOptions};
use std::process::ExitCode;

struct Args {
    iters: u64,
    seed: u64,
    size: usize,
    blocked: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { iters: 100, seed: 0x0adae1, size: 10, blocked: false };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--iters" => {
                args.iters = value("--iters")?.parse().map_err(|e| format!("--iters: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--size" => {
                args.size = value("--size")?.parse().map_err(|e| format!("--size: {e}"))?;
            }
            "--blocked" => args.blocked = true,
            "--help" | "-h" => {
                println!("usage: fuzz [--iters N] [--seed S] [--size K] [--blocked]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "fuzzing {} programs (seed {}, size {}{}) against the f64 oracle",
        args.iters,
        args.seed,
        args.size,
        if args.blocked { ", blocked-kernel shapes" } else { "" }
    );
    for i in 0..args.iters {
        // Mix the iteration index into the seed so each program is
        // independent yet the whole run replays from --seed alone.
        let seed = args.seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let program =
            gen_program_with(seed, &GenOptions { size: args.size, blocked: args.blocked });
        let Err(d) = check_program(&program) else {
            if (i + 1) % 50 == 0 {
                println!("  {}/{} ok", i + 1, args.iters);
            }
            continue;
        };
        eprintln!("iteration {i} (program seed {seed}): {d}");
        let minimal = shrink(&program);
        eprintln!("shrunk from {} to {} instructions", program.insts.len(), minimal.insts.len());
        eprintln!("\n// paste into crates/oracle/tests/differential.rs:\n");
        eprintln!("{}", render_reproducer(&minimal));
        return ExitCode::FAILURE;
    }
    println!("no discrepancies in {} programs", args.iters);
    ExitCode::SUCCESS
}
