//! A deliberately naive dense `f64` matrix.
//!
//! [`RefMatrix`] is the oracle's value type: every kernel is the textbook
//! triple/​double loop with no parallelism, no zero-skipping, no fusion, and
//! no reuse of production code. Operating in `f64` on `f32` inputs makes the
//! reference effectively exact relative to the production `f32` stack (53
//! mantissa bits of headroom over 24), so any disagreement beyond the
//! documented per-op budget (DESIGN.md §10) is a production bug, not oracle
//! noise.

use adamel_tensor::Matrix;

/// Dense row-major `f64` matrix used as the reference value type.
#[derive(Debug, Clone, PartialEq)]
pub struct RefMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl RefMatrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Wraps a row-major buffer; panics on a length mismatch.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "RefMatrix::from_vec length mismatch");
        Self { rows, cols, data }
    }

    /// Promotes a production `f32` matrix to `f64` exactly.
    pub fn from_matrix(m: &Matrix) -> Self {
        Self {
            rows: m.rows(),
            cols: m.cols(),
            data: m.as_slice().iter().map(|&v| v as f64).collect(),
        }
    }

    /// Promotes a row-major `f32` slice to `f64` exactly.
    pub fn from_f32(rows: usize, cols: usize, data: &[f32]) -> Self {
        assert_eq!(data.len(), rows * cols, "RefMatrix::from_f32 length mismatch");
        Self { rows, cols, data: data.iter().map(|&v| v as f64).collect() }
    }

    /// A 1x1 matrix.
    pub fn scalar(v: f64) -> Self {
        Self::from_vec(1, 1, vec![v])
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element access; panics out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "RefMatrix::get out of bounds");
        self.data[i * self.cols + j]
    }

    /// Element assignment; panics out of bounds.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "RefMatrix::set out of bounds");
        self.data[i * self.cols + j] = v;
    }

    /// Row-major backing buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The value of a 1x1 matrix; panics otherwise.
    pub fn item(&self) -> f64 {
        assert_eq!(self.shape(), (1, 1), "RefMatrix::item requires a 1x1 matrix");
        self.data[0]
    }

    /// Demotes to a production `f32` matrix (round-to-nearest per element).
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, self.data.iter().map(|&v| v as f32).collect())
    }

    /// Textbook `(n,k) x (k,m)` product, ascending-index accumulation.
    pub fn matmul(&self, other: &RefMatrix) -> RefMatrix {
        assert_eq!(self.cols, other.rows, "RefMatrix::matmul shape mismatch");
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = RefMatrix::zeros(n, m);
        for i in 0..n {
            for j in 0..m {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += self.data[i * k + p] * other.data[p * m + j];
                }
                out.data[i * m + j] = acc;
            }
        }
        out
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> RefMatrix {
        let mut out = RefMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// `selfᵀ * other` via an explicit transpose (the naive spelling).
    pub fn matmul_tn(&self, other: &RefMatrix) -> RefMatrix {
        self.transpose().matmul(other)
    }

    /// `self * otherᵀ` via an explicit transpose (the naive spelling).
    pub fn matmul_nt(&self, other: &RefMatrix) -> RefMatrix {
        self.matmul(&other.transpose())
    }

    /// Elementwise sum.
    pub fn add(&self, other: &RefMatrix) -> RefMatrix {
        assert_eq!(self.shape(), other.shape(), "RefMatrix::add shape mismatch");
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &RefMatrix) -> RefMatrix {
        assert_eq!(self.shape(), other.shape(), "RefMatrix::sub shape mismatch");
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise product.
    pub fn mul(&self, other: &RefMatrix) -> RefMatrix {
        assert_eq!(self.shape(), other.shape(), "RefMatrix::mul shape mismatch");
        self.zip(other, |a, b| a * b)
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f64) -> RefMatrix {
        self.map(|v| v * s)
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> RefMatrix {
        RefMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    fn zip(&self, other: &RefMatrix, f: impl Fn(f64, f64) -> f64) -> RefMatrix {
        RefMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Adds a `1 x cols` row vector to every row.
    pub fn add_row_broadcast(&self, row: &RefMatrix) -> RefMatrix {
        assert_eq!(row.rows, 1, "RefMatrix::add_row_broadcast: rhs must be a row vector");
        assert_eq!(row.cols, self.cols, "RefMatrix::add_row_broadcast shape mismatch");
        let mut out = self.clone();
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[i * self.cols + j] += row.data[j];
            }
        }
        out
    }

    /// Scales row `i` by element `i` of an `n x 1` column.
    pub fn mul_col_broadcast(&self, col: &RefMatrix) -> RefMatrix {
        assert_eq!(col.cols, 1, "RefMatrix::mul_col_broadcast: rhs must be a column vector");
        assert_eq!(col.rows, self.rows, "RefMatrix::mul_col_broadcast shape mismatch");
        let mut out = self.clone();
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[i * self.cols + j] *= col.data[i];
            }
        }
        out
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> RefMatrix {
        self.map(|v| v.max(0.0))
    }

    /// Row-wise softmax with the (mathematically exact) max-subtraction.
    pub fn softmax_rows(&self) -> RefMatrix {
        let mut out = self.clone();
        for i in 0..self.rows {
            let row = &mut out.data[i * self.cols..(i + 1) * self.cols];
            let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        out
    }

    /// Horizontal concatenation.
    pub fn concat_cols(parts: &[&RefMatrix]) -> RefMatrix {
        assert!(!parts.is_empty(), "RefMatrix::concat_cols: empty input");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = RefMatrix::zeros(rows, cols);
        for i in 0..rows {
            let mut offset = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "RefMatrix::concat_cols: row count mismatch");
                for j in 0..p.cols {
                    out.data[i * cols + offset + j] = p.data[i * p.cols + j];
                }
                offset += p.cols;
            }
        }
        out
    }

    /// Copies the column window `[start, start + width)`.
    pub fn slice_cols(&self, start: usize, width: usize) -> RefMatrix {
        assert!(start + width <= self.cols, "RefMatrix::slice_cols out of bounds");
        let mut out = RefMatrix::zeros(self.rows, width);
        for i in 0..self.rows {
            for j in 0..width {
                out.data[i * width + j] = self.data[i * self.cols + start + j];
            }
        }
        out
    }

    /// Sum of all elements (ascending index order).
    pub fn sum(&self) -> f64 {
        let mut acc = 0.0;
        for &v in &self.data {
            acc += v;
        }
        acc
    }

    /// Mean of all elements; 0.0 for an empty matrix.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Sum of absolute values — the scale term of rounding-error bounds.
    pub fn abs_sum(&self) -> f64 {
        let mut acc = 0.0;
        for &v in &self.data {
            acc += v.abs();
        }
        acc
    }

    /// Column-wise mean producing a `1 x cols` row.
    pub fn mean_rows(&self) -> RefMatrix {
        let mut out = RefMatrix::zeros(1, self.cols);
        if self.rows == 0 {
            return out;
        }
        for j in 0..self.cols {
            let mut acc = 0.0;
            for i in 0..self.rows {
                acc += self.data[i * self.cols + j];
            }
            out.data[j] = acc / self.rows as f64;
        }
        out
    }

    /// Largest absolute element (0.0 when empty).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = RefMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = RefMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.matmul(&b).as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let a = RefMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn softmax_rows_normalizes() {
        let a = RefMatrix::from_vec(2, 3, vec![0.0, 1.0, -1.0, 1000.0, 1000.0, 1000.0]);
        let s = a.softmax_rows();
        for i in 0..2 {
            let sum: f64 = (0..3).map(|j| s.get(i, j)).sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn promotion_is_exact() {
        let m = Matrix::from_vec(1, 3, vec![0.1, -2.5, 3.75]);
        let r = RefMatrix::from_matrix(&m);
        for (a, b) in m.as_slice().iter().zip(r.as_slice()) {
            assert_eq!(*a as f64, *b);
        }
    }
}
