//! Random tape programs and the per-op differential check.
//!
//! A [`Program`] is a flat list of [`Inst`]s referencing earlier instructions
//! by index, with every leaf a `Param`. [`check_program`] runs the program
//! through the *production* stack ([`adamel_tensor::Graph`]) and compares
//!
//! * every node's forward value against the oracle op applied to the
//!   **production** parent values promoted to `f64` (per-op isolation — no
//!   unbounded upstream error amplification), within the ULP/absolute budgets
//!   of [`crate::ulp`], and
//! * every parameter gradient from the production backward pass against
//!   central finite differences of the full `f64` oracle.
//!
//! [`gen_program`] builds random well-shaped programs from a seed, and
//! [`shrink`] reduces a failing program to a minimal reproducer that
//! [`render_reproducer`] prints as a paste-able test.

use crate::refmat::RefMatrix;
use crate::ulp::{op_ulps, ulp_distance, Budget, EPS32};
use adamel_tensor::{Graph, Matrix, ParamSet, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One tape instruction. Operand fields are indices of earlier instructions.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// A trainable leaf with explicit shape and row-major data.
    Param {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
        /// Row-major values.
        data: Vec<f32>,
    },
    /// `(n,k) x (k,m)` product.
    MatMul {
        /// Left operand.
        a: usize,
        /// Right operand.
        b: usize,
    },
    /// Elementwise sum.
    Add {
        /// Left operand.
        a: usize,
        /// Right operand.
        b: usize,
    },
    /// Adds a `1 x cols` bias row to every row of `a`.
    AddRowBroadcast {
        /// Input matrix.
        a: usize,
        /// Bias row.
        bias: usize,
    },
    /// Elementwise product.
    Mul {
        /// Left operand.
        a: usize,
        /// Right operand.
        b: usize,
    },
    /// Scales row `i` of `a` by element `i` of an `n x 1` column.
    MulColBroadcast {
        /// Input matrix.
        a: usize,
        /// Column of per-row factors.
        col: usize,
    },
    /// Scalar multiple.
    Scale {
        /// Input.
        a: usize,
        /// Constant factor.
        factor: f32,
    },
    /// Rectified linear unit.
    Relu {
        /// Input.
        a: usize,
    },
    /// Hyperbolic tangent.
    Tanh {
        /// Input.
        a: usize,
    },
    /// Logistic sigmoid.
    Sigmoid {
        /// Input.
        a: usize,
    },
    /// Row-wise softmax.
    SoftmaxRows {
        /// Input.
        a: usize,
    },
    /// Horizontal concatenation.
    ConcatCols {
        /// Parts, left to right.
        parts: Vec<usize>,
    },
    /// Column window copy.
    SliceCols {
        /// Input.
        a: usize,
        /// First column.
        start: usize,
        /// Window width.
        width: usize,
    },
    /// Mean over all elements (1x1 output).
    MeanAll {
        /// Input.
        a: usize,
    },
    /// Sum over all elements (1x1 output).
    SumAll {
        /// Input.
        a: usize,
    },
    /// Weighted binary cross-entropy with logits (1x1 output); `logits` must
    /// be `n x 1` and `targets`/`weights` are length-`n` constants.
    WeightedBce {
        /// Logit column.
        logits: usize,
        /// 0/1 labels.
        targets: Vec<f32>,
        /// Per-sample weights.
        weights: Vec<f32>,
    },
    /// Mean row-wise KL against a constant `1 x m` target (1x1 output);
    /// `probs` rows must already be normalized (softmax outputs).
    KlConstRows {
        /// Probability rows.
        probs: usize,
        /// Target distribution, length `m`.
        target: Vec<f32>,
        /// Logarithm guard.
        eps: f32,
    },
}

impl Inst {
    /// Indices of the instructions this one reads.
    pub fn parents(&self) -> Vec<usize> {
        match self {
            Inst::Param { .. } => Vec::new(),
            Inst::MatMul { a, b } | Inst::Add { a, b } | Inst::Mul { a, b } => vec![*a, *b],
            Inst::AddRowBroadcast { a, bias } => vec![*a, *bias],
            Inst::MulColBroadcast { a, col } => vec![*a, *col],
            Inst::Scale { a, .. }
            | Inst::Relu { a }
            | Inst::Tanh { a }
            | Inst::Sigmoid { a }
            | Inst::SoftmaxRows { a }
            | Inst::SliceCols { a, .. }
            | Inst::MeanAll { a }
            | Inst::SumAll { a } => vec![*a],
            Inst::ConcatCols { parts } => parts.clone(),
            Inst::WeightedBce { logits, .. } => vec![*logits],
            Inst::KlConstRows { probs, .. } => vec![*probs],
        }
    }

    /// The op name used by the budget table ([`op_ulps`]).
    pub fn op_name(&self) -> &'static str {
        match self {
            Inst::Param { .. } => "param",
            Inst::MatMul { .. } => "matmul",
            Inst::Add { .. } => "add",
            Inst::AddRowBroadcast { .. } => "add_row_broadcast",
            Inst::Mul { .. } => "mul",
            Inst::MulColBroadcast { .. } => "mul_col_broadcast",
            Inst::Scale { .. } => "scale",
            Inst::Relu { .. } => "relu",
            Inst::Tanh { .. } => "tanh",
            Inst::Sigmoid { .. } => "sigmoid",
            Inst::SoftmaxRows { .. } => "softmax_rows",
            Inst::ConcatCols { .. } => "concat_cols",
            Inst::SliceCols { .. } => "slice_cols",
            Inst::MeanAll { .. } => "mean_all",
            Inst::SumAll { .. } => "sum_all",
            Inst::WeightedBce { .. } => "weighted_bce_with_logits",
            Inst::KlConstRows { .. } => "kl_const_rows",
        }
    }
}

/// A straight-line tape program. `root` is the index whose (1x1) value the
/// backward pass differentiates; forward checking covers *every* node.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Instructions in dependency order.
    pub insts: Vec<Inst>,
    /// Index of the scalar root.
    pub root: usize,
}

/// A detected disagreement between production and oracle.
#[derive(Debug, Clone)]
pub struct Discrepancy {
    /// Index of the offending instruction.
    pub inst: usize,
    /// Op name of the offending instruction.
    pub op: &'static str,
    /// `"forward"` or `"grad"`.
    pub kind: &'static str,
    /// Human-readable description (element, values, budget).
    pub detail: String,
}

impl std::fmt::Display for Discrepancy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "inst {} ({}) {}: {}", self.inst, self.op, self.kind, self.detail)
    }
}

/// A deliberate corruption of one production forward value, used by the
/// harness's own mutation test to prove injected kernel bugs are caught.
#[derive(Debug, Clone, Copy)]
pub struct Fault {
    /// Instruction whose production value is corrupted.
    pub inst: usize,
    /// Relative perturbation; every element moves by at least this much.
    pub rel: f32,
}

struct ProdRun {
    values: Vec<Matrix>,
    grads: Vec<Option<Matrix>>,
}

/// Runs the program through the production tape, recording every forward
/// value and (when the root is 1x1) every parameter gradient.
fn run_production(p: &Program) -> ProdRun {
    let mut params = ParamSet::new();
    let mut g = Graph::new();
    let mut vars: Vec<Var> = Vec::with_capacity(p.insts.len());
    let mut ids: Vec<Option<adamel_tensor::ParamId>> = Vec::with_capacity(p.insts.len());
    for (i, inst) in p.insts.iter().enumerate() {
        let mut id = None;
        let v = match inst {
            Inst::Param { rows, cols, data } => {
                let pid =
                    params.insert(format!("p{i}"), Matrix::from_vec(*rows, *cols, data.clone()));
                id = Some(pid);
                g.param(&params, pid)
            }
            Inst::MatMul { a, b } => g.matmul(vars[*a], vars[*b]),
            Inst::Add { a, b } => g.add(vars[*a], vars[*b]),
            Inst::AddRowBroadcast { a, bias } => g.add_row_broadcast(vars[*a], vars[*bias]),
            Inst::Mul { a, b } => g.mul(vars[*a], vars[*b]),
            Inst::MulColBroadcast { a, col } => g.mul_col_broadcast(vars[*a], vars[*col]),
            Inst::Scale { a, factor } => g.scale(vars[*a], *factor),
            Inst::Relu { a } => g.relu(vars[*a]),
            Inst::Tanh { a } => g.tanh(vars[*a]),
            Inst::Sigmoid { a } => g.sigmoid(vars[*a]),
            Inst::SoftmaxRows { a } => g.softmax_rows(vars[*a]),
            Inst::ConcatCols { parts } => {
                let part_vars: Vec<Var> = parts.iter().map(|&q| vars[q]).collect();
                g.concat_cols(&part_vars)
            }
            Inst::SliceCols { a, start, width } => g.slice_cols(vars[*a], *start, *width),
            Inst::MeanAll { a } => g.mean_all(vars[*a]),
            Inst::SumAll { a } => g.sum_all(vars[*a]),
            Inst::WeightedBce { logits, targets, weights } => {
                let n = targets.len();
                g.weighted_bce_with_logits(
                    vars[*logits],
                    Matrix::from_vec(n, 1, targets.clone()),
                    Matrix::from_vec(n, 1, weights.clone()),
                )
            }
            Inst::KlConstRows { probs, target, eps } => g.kl_const_rows(
                vars[*probs],
                Matrix::from_vec(1, target.len(), target.clone()),
                *eps,
            ),
        };
        ids.push(id);
        vars.push(v);
    }
    let values: Vec<Matrix> = vars.iter().map(|&v| g.value(v).clone()).collect();
    let mut grads: Vec<Option<Matrix>> = vec![None; p.insts.len()];
    if values[p.root].shape() == (1, 1) {
        g.backward(vars[p.root], &mut params);
        for (i, id) in ids.iter().enumerate() {
            if let Some(pid) = id {
                grads[i] = Some(params.grad(*pid).clone());
            }
        }
    }
    ProdRun { values, grads }
}

/// Applies the oracle version of one instruction to already-promoted parents.
fn oracle_apply(inst: &Inst, parents: &[RefMatrix]) -> RefMatrix {
    match inst {
        Inst::Param { rows, cols, data } => RefMatrix::from_f32(*rows, *cols, data),
        Inst::MatMul { .. } => parents[0].matmul(&parents[1]),
        Inst::Add { .. } => parents[0].add(&parents[1]),
        Inst::AddRowBroadcast { .. } => parents[0].add_row_broadcast(&parents[1]),
        Inst::Mul { .. } => parents[0].mul(&parents[1]),
        Inst::MulColBroadcast { .. } => parents[0].mul_col_broadcast(&parents[1]),
        Inst::Scale { factor, .. } => parents[0].scale(f64::from(*factor)),
        Inst::Relu { .. } => parents[0].relu(),
        Inst::Tanh { .. } => parents[0].map(f64::tanh),
        Inst::Sigmoid { .. } => parents[0].map(|v| 1.0 / (1.0 + (-v).exp())),
        Inst::SoftmaxRows { .. } => parents[0].softmax_rows(),
        Inst::ConcatCols { .. } => {
            let refs: Vec<&RefMatrix> = parents.iter().collect();
            RefMatrix::concat_cols(&refs)
        }
        Inst::SliceCols { start, width, .. } => parents[0].slice_cols(*start, *width),
        Inst::MeanAll { .. } => RefMatrix::scalar(parents[0].mean()),
        Inst::SumAll { .. } => RefMatrix::scalar(parents[0].sum()),
        Inst::WeightedBce { targets, weights, .. } => {
            RefMatrix::scalar(bce_terms(&parents[0], targets, weights).0)
        }
        Inst::KlConstRows { target, eps, .. } => {
            RefMatrix::scalar(kl_terms(&parents[0], target, *eps).0)
        }
    }
}

/// `(mean, mean of |term|)` of the stable weighted BCE over `n x 1` logits.
fn bce_terms(z: &RefMatrix, targets: &[f32], weights: &[f32]) -> (f64, f64) {
    let n = z.rows().max(1) as f64;
    let (mut total, mut abs_total) = (0.0, 0.0);
    for i in 0..z.rows() {
        let zi = z.get(i, 0);
        let (yi, wi) = (f64::from(targets[i]), f64::from(weights[i]));
        let term = wi * (zi.max(0.0) - zi * yi + (-zi.abs()).exp().ln_1p());
        total += term;
        abs_total += term.abs();
    }
    (total / n, abs_total / n)
}

/// `(mean, mean of |term|)` of the row-wise KL against a constant target.
fn kl_terms(p: &RefMatrix, target: &[f32], eps: f32) -> (f64, f64) {
    let n = p.rows().max(1) as f64;
    let (mut total, mut abs_total) = (0.0, 0.0);
    for i in 0..p.rows() {
        for (j, &q32) in target.iter().enumerate() {
            let q = f64::from(q32);
            if q > 0.0 {
                let term = q * (q / (p.get(i, j) + f64::from(eps))).ln();
                total += term;
                abs_total += term.abs();
            }
        }
    }
    (total / n, abs_total / n)
}

/// `(ulps, per-element absolute fallback)` for one instruction given its
/// promoted production parents and the oracle output shape.
fn forward_budget(inst: &Inst, parents: &[RefMatrix], out: &RefMatrix) -> (u64, RefMatrix) {
    let zeros = || RefMatrix::zeros(out.rows(), out.cols());
    match inst {
        Inst::MatMul { .. } => {
            let k = parents[0].cols();
            let scale = parents[0].map(f64::abs).matmul(&parents[1].map(f64::abs));
            (op_ulps("matmul", k), scale.scale((k as f64 + 4.0) * EPS32))
        }
        Inst::SoftmaxRows { .. } => {
            let m = parents[0].cols();
            let abs = (m as f64 + 4.0) * EPS32;
            (op_ulps("softmax_rows", m), zeros().map(|_| abs))
        }
        Inst::SumAll { .. } => {
            let n = parents[0].len();
            let abs = (n as f64 + 4.0) * EPS32 * parents[0].abs_sum();
            (op_ulps("sum_all", n), RefMatrix::scalar(abs))
        }
        Inst::MeanAll { .. } => {
            let n = parents[0].len();
            let abs = (n as f64 + 4.0) * EPS32 * parents[0].abs_sum() / n.max(1) as f64;
            (op_ulps("mean_all", n), RefMatrix::scalar(abs))
        }
        Inst::WeightedBce { targets, weights, .. } => {
            let n = parents[0].rows();
            let (_, mean_abs) = bce_terms(&parents[0], targets, weights);
            let abs = (n as f64 + 4.0) * EPS32 * mean_abs.max(1.0);
            (op_ulps("weighted_bce_with_logits", n), RefMatrix::scalar(abs))
        }
        Inst::KlConstRows { target, eps, .. } => {
            let n = parents[0].len();
            let (_, mean_abs) = kl_terms(&parents[0], target, *eps);
            let abs = (n as f64 + 4.0) * EPS32 * mean_abs.max(1.0);
            (op_ulps("kl_const_rows", n), RefMatrix::scalar(abs))
        }
        _ => (op_ulps(inst.op_name(), 0), zeros()),
    }
}

/// Full `f64` evaluation of the program at the given parameter values
/// (`param_values` in order of `Param` appearance); returns the root value.
pub fn eval_oracle_root(p: &Program, param_values: &[RefMatrix]) -> f64 {
    let mut values: Vec<RefMatrix> = Vec::with_capacity(p.insts.len());
    let mut next_param = 0;
    for inst in &p.insts {
        let v = if let Inst::Param { .. } = inst {
            let v = param_values[next_param].clone();
            next_param += 1;
            v
        } else {
            let parents: Vec<RefMatrix> =
                inst.parents().iter().map(|&q| values[q].clone()).collect();
            oracle_apply(inst, &parents)
        };
        values.push(v);
    }
    values[p.root].item()
}

/// Checks one program: production forward per-op against the oracle within
/// budget, and production gradients against oracle finite differences.
pub fn check_program(p: &Program) -> Result<(), Discrepancy> {
    check_with_fault(p, None)
}

/// Upper bound on gradient elements finite-difference-checked per parameter;
/// beyond it a deterministic stride subsamples the tensor.
const GRAD_CHECK_MAX_ELEMENTS: usize = 64;

/// [`check_program`] with an optional injected fault — the mutation hook the
/// harness's own tests use to prove a corrupted kernel output is caught.
pub fn check_with_fault(p: &Program, fault: Option<Fault>) -> Result<(), Discrepancy> {
    let run = run_production(p);
    let mut values = run.values;
    if let Some(f) = fault {
        for v in values[f.inst].as_mut_slice() {
            *v += f.rel * (v.abs() + 1.0);
        }
    }

    // Forward: each op in isolation, oracle applied to *production* parents.
    for (i, inst) in p.insts.iter().enumerate() {
        let parents: Vec<RefMatrix> =
            inst.parents().iter().map(|&q| RefMatrix::from_matrix(&values[q])).collect();
        let oracle = oracle_apply(inst, &parents);
        let prod = &values[i];
        if prod.shape() != oracle.shape() {
            return Err(Discrepancy {
                inst: i,
                op: inst.op_name(),
                kind: "forward",
                detail: format!(
                    "shape mismatch: production {:?} vs oracle {:?}",
                    prod.shape(),
                    oracle.shape()
                ),
            });
        }
        let (ulps, abs) = forward_budget(inst, &parents, &oracle);
        for r in 0..oracle.rows() {
            for c in 0..oracle.cols() {
                let pv = prod.get(r, c);
                let ov = oracle.get(r, c);
                let budget = Budget { ulps, abs: abs.get(r, c) };
                if !budget.accepts(pv, ov) {
                    return Err(Discrepancy {
                        inst: i,
                        op: inst.op_name(),
                        kind: "forward",
                        detail: format!(
                            "element ({r},{c}): production {pv:e} vs oracle {ov:e} \
                             ({} ulps, budget {} ulps / {:e} abs)",
                            ulp_distance(pv, ov as f32),
                            ulps,
                            budget.abs
                        ),
                    });
                }
            }
        }
    }

    // Backward: production gradients vs oracle central finite differences.
    // Large parameters (the blocked-shape profile emits up to 17x17 leaves)
    // are subsampled with a deterministic stride so fuzz throughput stays
    // usable; the stride depends only on the tensor size, so a seed always
    // checks the same elements and reproducers stay exact.
    let param_order: Vec<usize> = p
        .insts
        .iter()
        .enumerate()
        .filter(|(_, inst)| matches!(inst, Inst::Param { .. }))
        .map(|(i, _)| i)
        .collect();
    let base: Vec<RefMatrix> = param_order
        .iter()
        .map(|&i| match &p.insts[i] {
            Inst::Param { rows, cols, data } => RefMatrix::from_f32(*rows, *cols, data),
            _ => RefMatrix::zeros(0, 0),
        })
        .collect();
    for (k, &pi) in param_order.iter().enumerate() {
        let Some(grad) = &run.grads[pi] else { continue };
        let total = grad.rows() * grad.cols();
        let stride = total.div_ceil(GRAD_CHECK_MAX_ELEMENTS).max(1);
        for flat in (0..total).step_by(stride) {
            let (r, c) = (flat / grad.cols(), flat % grad.cols());
            {
                let x = base[k].get(r, c);
                let h = 1e-3 * x.abs().max(1.0);
                let eval = |delta: f64| -> f64 {
                    let mut pv = base.clone();
                    pv[k].set(r, c, x + delta);
                    eval_oracle_root(p, &pv)
                };
                let fd = (eval(h) - eval(-h)) / (2.0 * h);
                let fd_half = (eval(h / 2.0) - eval(-h / 2.0)) / h;
                // h-halving guard: where the two step sizes disagree the loss
                // is locally ill-conditioned (ReLU kink, max switch) and the
                // finite difference is meaningless — skip the element.
                if (fd - fd_half).abs() > 0.1 * fd.abs().max(fd_half.abs()).max(1e-6) {
                    continue;
                }
                let g = f64::from(grad.get(r, c));
                if (g - fd).abs() > 2e-2 * g.abs().max(fd.abs()).max(1.0) {
                    return Err(Discrepancy {
                        inst: pi,
                        op: "param",
                        kind: "grad",
                        detail: format!(
                            "element ({r},{c}): production grad {g:e} vs oracle fd {fd:e}"
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Shape profile for [`gen_program_with`].
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Rough instruction count of the generated program.
    pub size: usize,
    /// When true, parameter leaves are drawn from a blocked-kernel palette —
    /// dims crossing the `MR`/`NR` register-tile edges plus 16/17, so matmuls
    /// land on both sides of the blocked-dispatch threshold (a 16³ product is
    /// the smallest that takes the blocked path) — instead of `1..=4`.
    pub blocked: bool,
}

impl Default for GenOptions {
    fn default() -> Self {
        Self { size: 8, blocked: false }
    }
}

/// Generates a random well-shaped program with roughly `size` instructions,
/// rejecting nodes whose oracle value explodes past `1e4`. All sinks are
/// folded through `MeanAll` and an `Add` chain into a single scalar root.
pub fn gen_program(seed: u64, size: usize) -> Program {
    gen_program_with(seed, &GenOptions { size, blocked: false })
}

/// [`gen_program`] with an explicit shape profile.
pub fn gen_program_with(seed: u64, opts: &GenOptions) -> Program {
    let size = opts.size;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6f72_6163); // "orac"
    let mut insts: Vec<Inst> = Vec::new();
    let mut values: Vec<RefMatrix> = Vec::new();
    let mut softmax_nodes: Vec<usize> = Vec::new();

    let push = |insts: &mut Vec<Inst>, values: &mut Vec<RefMatrix>, inst: Inst| -> bool {
        let parents: Vec<RefMatrix> = inst.parents().iter().map(|&q| values[q].clone()).collect();
        let v = oracle_apply(&inst, &parents);
        if v.max_abs() > 1e4 || !v.as_slice().iter().all(|x| x.is_finite()) {
            return false;
        }
        insts.push(inst);
        values.push(v);
        true
    };

    // The blocked palette repeats 16 so `a.cols == b.rows` coincidences (the
    // matmul precondition) stay common despite the wider dim spread.
    let blocked_dims: [usize; 8] = {
        use adamel_tensor::gemm::{MR, NR};
        [1, MR, MR + 1, NR, NR + 1, 16, 16, 17]
    };
    let dim = |rng: &mut StdRng| -> usize {
        if opts.blocked {
            blocked_dims[rng.gen_range(0..blocked_dims.len())]
        } else {
            rng.gen_range(1..=4usize)
        }
    };
    let n_params = 1 + rng.gen_range(0..3usize) + usize::from(opts.blocked);
    for _ in 0..n_params {
        let rows = dim(&mut rng);
        let cols = dim(&mut rng);
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
        push(&mut insts, &mut values, Inst::Param { rows, cols, data });
    }

    let mut attempts = 0;
    while insts.len() < size.max(n_params + 1) && attempts < 40 * size {
        attempts += 1;
        let n = insts.len();
        let pick = |rng: &mut StdRng| rng.gen_range(0..n);
        let inst = match rng.gen_range(0..14u32) {
            0 => {
                // MatMul: find a pair with a.cols == b.rows.
                let a = pick(&mut rng);
                let candidates: Vec<usize> =
                    (0..n).filter(|&b| values[b].rows() == values[a].cols()).collect();
                if candidates.is_empty() {
                    continue;
                }
                let b = candidates[rng.gen_range(0..candidates.len())];
                Inst::MatMul { a, b }
            }
            1 | 2 => {
                let a = pick(&mut rng);
                let candidates: Vec<usize> =
                    (0..n).filter(|&b| values[b].shape() == values[a].shape()).collect();
                let b = candidates[rng.gen_range(0..candidates.len())];
                if rng.gen_bool(0.5) {
                    Inst::Add { a, b }
                } else {
                    Inst::Mul { a, b }
                }
            }
            3 => {
                let a = pick(&mut rng);
                let candidates: Vec<usize> = (0..n)
                    .filter(|&b| values[b].rows() == 1 && values[b].cols() == values[a].cols())
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let bias = candidates[rng.gen_range(0..candidates.len())];
                Inst::AddRowBroadcast { a, bias }
            }
            4 => {
                let a = pick(&mut rng);
                let candidates: Vec<usize> = (0..n)
                    .filter(|&b| values[b].cols() == 1 && values[b].rows() == values[a].rows())
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let col = candidates[rng.gen_range(0..candidates.len())];
                Inst::MulColBroadcast { a, col }
            }
            5 => Inst::Scale { a: pick(&mut rng), factor: rng.gen_range(-1.5f32..1.5) },
            6 => Inst::Relu { a: pick(&mut rng) },
            7 => Inst::Tanh { a: pick(&mut rng) },
            8 => Inst::Sigmoid { a: pick(&mut rng) },
            9 => Inst::SoftmaxRows { a: pick(&mut rng) },
            10 => {
                let a = pick(&mut rng);
                let candidates: Vec<usize> =
                    (0..n).filter(|&b| values[b].rows() == values[a].rows()).collect();
                let b = candidates[rng.gen_range(0..candidates.len())];
                Inst::ConcatCols { parts: vec![a, b] }
            }
            11 => {
                let a = pick(&mut rng);
                let cols = values[a].cols();
                let start = rng.gen_range(0..cols);
                let width = rng.gen_range(1..=cols - start);
                Inst::SliceCols { a, start, width }
            }
            12 => {
                // BCE needs an n x 1 logit column; slice one if necessary.
                let candidates: Vec<usize> = (0..n).filter(|&b| values[b].cols() == 1).collect();
                if candidates.is_empty() {
                    continue;
                }
                let logits = candidates[rng.gen_range(0..candidates.len())];
                let rows = values[logits].rows();
                let targets: Vec<f32> =
                    (0..rows).map(|_| if rng.gen_bool(0.5) { 1.0 } else { 0.0 }).collect();
                let weights: Vec<f32> = (0..rows).map(|_| rng.gen_range(0.1f32..2.0)).collect();
                Inst::WeightedBce { logits, targets, weights }
            }
            _ => {
                // KL requires normalized rows: only softmax outputs qualify
                // (the runtime sanitizer enforces this).
                if softmax_nodes.is_empty() {
                    continue;
                }
                let probs = softmax_nodes[rng.gen_range(0..softmax_nodes.len())];
                let m = values[probs].cols();
                let raw: Vec<f64> = (0..m).map(|_| rng.gen_range(0.05f64..1.0)).collect();
                let total: f64 = raw.iter().sum();
                let target: Vec<f32> = raw.iter().map(|&v| (v / total) as f32).collect();
                Inst::KlConstRows { probs, target, eps: 1e-7 }
            }
        };
        let is_softmax = matches!(inst, Inst::SoftmaxRows { .. });
        if push(&mut insts, &mut values, inst) && is_softmax {
            softmax_nodes.push(insts.len() - 1);
        }
    }

    // Fold every sink into a single scalar root.
    let mut used = vec![false; insts.len()];
    for inst in &insts {
        for q in inst.parents() {
            used[q] = true;
        }
    }
    let sinks: Vec<usize> = (0..insts.len()).filter(|&i| !used[i]).collect();
    let mut scalars: Vec<usize> = Vec::new();
    for s in sinks {
        if values[s].shape() == (1, 1) {
            scalars.push(s);
        } else {
            push(&mut insts, &mut values, Inst::MeanAll { a: s });
            scalars.push(insts.len() - 1);
        }
    }
    let mut root = scalars[0];
    for &s in &scalars[1..] {
        push(&mut insts, &mut values, Inst::Add { a: root, b: s });
        root = insts.len() - 1;
    }
    Program { insts, root }
}

/// Removes the instructions marked `dead` (which must be closed under
/// dependents), remapping indices; returns `None` when nothing remains.
fn remove_insts(p: &Program, dead: &[bool]) -> Option<Program> {
    let mut remap: Vec<usize> = vec![usize::MAX; p.insts.len()];
    let mut insts: Vec<Inst> = Vec::new();
    for (i, inst) in p.insts.iter().enumerate() {
        if dead[i] {
            continue;
        }
        let mut inst = inst.clone();
        match &mut inst {
            Inst::Param { .. } => {}
            Inst::MatMul { a, b } | Inst::Add { a, b } | Inst::Mul { a, b } => {
                *a = remap[*a];
                *b = remap[*b];
            }
            Inst::AddRowBroadcast { a, bias } => {
                *a = remap[*a];
                *bias = remap[*bias];
            }
            Inst::MulColBroadcast { a, col } => {
                *a = remap[*a];
                *col = remap[*col];
            }
            Inst::Scale { a, .. }
            | Inst::Relu { a }
            | Inst::Tanh { a }
            | Inst::Sigmoid { a }
            | Inst::SoftmaxRows { a }
            | Inst::SliceCols { a, .. }
            | Inst::MeanAll { a }
            | Inst::SumAll { a } => *a = remap[*a],
            Inst::ConcatCols { parts } => {
                for q in parts.iter_mut() {
                    *q = remap[*q];
                }
            }
            Inst::WeightedBce { logits, .. } => *logits = remap[*logits],
            Inst::KlConstRows { probs, .. } => *probs = remap[*probs],
        }
        remap[i] = insts.len();
        insts.push(inst);
    }
    if insts.is_empty() {
        return None;
    }
    let root = if dead[p.root] { insts.len() - 1 } else { remap[p.root] };
    Some(Program { insts, root })
}

/// Marks `start` and everything that transitively reads it.
fn dependents_of(p: &Program, start: usize) -> Vec<bool> {
    let mut dead = vec![false; p.insts.len()];
    dead[start] = true;
    for i in start + 1..p.insts.len() {
        if p.insts[i].parents().iter().any(|&q| dead[q]) {
            dead[i] = true;
        }
    }
    dead
}

/// Shrinks a failing program to a (locally) minimal one that still fails.
///
/// First slices the program down to the ancestors of the failing instruction
/// (forward failures), then repeatedly deletes any instruction (plus its
/// dependents) whose removal keeps the check failing.
pub fn shrink(p: &Program) -> Program {
    let mut current = p.clone();
    // Ancestor slice: keep only what the failing node computes from.
    if let Err(d) = check_program(&current) {
        let mut keep = vec![false; current.insts.len()];
        keep[d.inst] = true;
        for i in (0..=d.inst).rev() {
            if keep[i] {
                for q in current.insts[i].parents() {
                    keep[q] = true;
                }
            }
        }
        let dead: Vec<bool> = keep.iter().map(|&k| !k).collect();
        if let Some(mut sliced) = remove_insts(&current, &dead) {
            sliced.root = sliced.insts.len() - 1;
            if check_program(&sliced).is_err() {
                current = sliced;
            }
        }
    } else {
        return current; // Nothing to shrink.
    }
    // Greedy deletion until a fixed point.
    loop {
        let mut improved = false;
        for i in (0..current.insts.len()).rev() {
            let dead = dependents_of(&current, i);
            if dead.iter().all(|&d| d) {
                continue; // Would delete everything.
            }
            if let Some(candidate) = remove_insts(&current, &dead) {
                if check_program(&candidate).is_err() {
                    current = candidate;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            return current;
        }
    }
}

/// Renders a failing program as a paste-able `#[test]` reproducer. Parameter
/// data is emitted through `f32::from_bits` so the repro is bit-exact.
pub fn render_reproducer(p: &Program) -> String {
    let mut out = String::new();
    out.push_str("#[test]\nfn fuzz_reproducer() {\n");
    out.push_str("    use adamel_oracle::{check_program, Inst, Program};\n");
    out.push_str("    let p = Program {\n        insts: vec![\n");
    for inst in &p.insts {
        out.push_str("            ");
        out.push_str(&render_inst(inst));
        out.push_str(",\n");
    }
    out.push_str(&format!("        ],\n        root: {},\n    }};\n", p.root));
    out.push_str("    if let Err(d) = check_program(&p) {\n");
    out.push_str("        panic!(\"production diverges from oracle: {d}\");\n");
    out.push_str("    }\n}\n");
    out
}

fn render_f32s(data: &[f32]) -> String {
    let parts: Vec<String> =
        data.iter().map(|v| format!("f32::from_bits(0x{:08x})", v.to_bits())).collect();
    format!("vec![{}]", parts.join(", "))
}

fn render_inst(inst: &Inst) -> String {
    match inst {
        Inst::Param { rows, cols, data } => {
            format!("Inst::Param {{ rows: {rows}, cols: {cols}, data: {} }}", render_f32s(data))
        }
        Inst::MatMul { a, b } => format!("Inst::MatMul {{ a: {a}, b: {b} }}"),
        Inst::Add { a, b } => format!("Inst::Add {{ a: {a}, b: {b} }}"),
        Inst::AddRowBroadcast { a, bias } => {
            format!("Inst::AddRowBroadcast {{ a: {a}, bias: {bias} }}")
        }
        Inst::Mul { a, b } => format!("Inst::Mul {{ a: {a}, b: {b} }}"),
        Inst::MulColBroadcast { a, col } => {
            format!("Inst::MulColBroadcast {{ a: {a}, col: {col} }}")
        }
        Inst::Scale { a, factor } => {
            format!("Inst::Scale {{ a: {a}, factor: f32::from_bits(0x{:08x}) }}", factor.to_bits())
        }
        Inst::Relu { a } => format!("Inst::Relu {{ a: {a} }}"),
        Inst::Tanh { a } => format!("Inst::Tanh {{ a: {a} }}"),
        Inst::Sigmoid { a } => format!("Inst::Sigmoid {{ a: {a} }}"),
        Inst::SoftmaxRows { a } => format!("Inst::SoftmaxRows {{ a: {a} }}"),
        Inst::ConcatCols { parts } => format!("Inst::ConcatCols {{ parts: vec!{parts:?} }}"),
        Inst::SliceCols { a, start, width } => {
            format!("Inst::SliceCols {{ a: {a}, start: {start}, width: {width} }}")
        }
        Inst::MeanAll { a } => format!("Inst::MeanAll {{ a: {a} }}"),
        Inst::SumAll { a } => format!("Inst::SumAll {{ a: {a} }}"),
        Inst::WeightedBce { logits, targets, weights } => format!(
            "Inst::WeightedBce {{ logits: {logits}, targets: {}, weights: {} }}",
            render_f32s(targets),
            render_f32s(weights)
        ),
        Inst::KlConstRows { probs, target, eps } => format!(
            "Inst::KlConstRows {{ probs: {probs}, target: {}, eps: f32::from_bits(0x{:08x}) }}",
            render_f32s(target),
            eps.to_bits()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_program() -> Program {
        Program {
            insts: vec![
                Inst::Param { rows: 2, cols: 3, data: vec![0.5, -1.0, 2.0, 0.25, 1.5, -0.75] },
                Inst::Param { rows: 3, cols: 2, data: vec![1.0, 0.5, -0.5, 2.0, 0.125, -1.0] },
                Inst::MatMul { a: 0, b: 1 },
                Inst::Tanh { a: 2 },
                Inst::MeanAll { a: 3 },
            ],
            root: 4,
        }
    }

    #[test]
    fn tiny_program_passes() {
        assert!(check_program(&tiny_program()).is_ok());
    }

    #[test]
    fn injected_fault_is_caught() {
        let p = tiny_program();
        let err = check_with_fault(&p, Some(Fault { inst: 2, rel: 1e-3 }))
            .expect_err("fault must be detected");
        assert_eq!(err.kind, "forward");
    }

    #[test]
    fn generated_programs_are_well_formed() {
        for seed in 0..10 {
            let p = gen_program(seed, 8);
            assert!(!p.insts.is_empty());
            assert!(p.root < p.insts.len());
            for (i, inst) in p.insts.iter().enumerate() {
                for q in inst.parents() {
                    assert!(q < i, "forward reference in seed {seed}");
                }
            }
        }
    }

    #[test]
    fn blocked_profile_reaches_blocked_dispatch() {
        use adamel_tensor::gemm::use_blocked;
        // Across a handful of seeds the blocked palette must generate at
        // least one matmul that actually takes the blocked kernel path —
        // otherwise the `--blocked` fuzz profile silently tests nothing new.
        let mut hit = false;
        for seed in 0..24 {
            let p = gen_program_with(seed, &GenOptions { size: 10, blocked: true });
            let mut shapes: Vec<(usize, usize)> = Vec::new();
            for inst in &p.insts {
                let parents: Vec<RefMatrix> = inst
                    .parents()
                    .iter()
                    .map(|&q| shapes[q])
                    .map(|(r, c)| RefMatrix::zeros(r, c))
                    .collect();
                let v = oracle_apply(inst, &parents);
                if let Inst::MatMul { a, b } = inst {
                    let (n, k) = shapes[*a];
                    let m = shapes[*b].1;
                    debug_assert_eq!(k, shapes[*b].0);
                    if use_blocked(n, k, m) {
                        hit = true;
                    }
                }
                shapes.push(v.shape());
            }
        }
        assert!(hit, "no generated matmul dispatches to the blocked kernels");
    }

    #[test]
    fn blocked_programs_pass_differential_check() {
        for seed in 100..104 {
            let p = gen_program_with(seed, &GenOptions { size: 10, blocked: true });
            if let Err(d) = check_program(&p) {
                panic!("blocked program seed {seed} diverges: {d}");
            }
        }
    }

    #[test]
    fn shrink_produces_smaller_failing_program() {
        // Build a passing program, then make it fail via a corrupted check by
        // constructing a program whose production output cannot match: a
        // matmul compared under a deliberately wrong shape is impossible to
        // fabricate here, so instead verify shrink is a no-op on passes.
        let p = tiny_program();
        let s = shrink(&p);
        assert_eq!(s, p);
    }

    #[test]
    fn reproducer_renders_program_literal() {
        let text = render_reproducer(&tiny_program());
        assert!(text.contains("Inst::MatMul { a: 0, b: 1 }"));
        assert!(text.contains("f32::from_bits"));
        assert!(text.contains("root: 4"));
    }
}
