//! O(n²) reference precision-recall computation.
//!
//! For every distinct threshold `t` (descending) the whole sample set is
//! re-scanned counting `score >= t` predictions — quadratic, branch-free of
//! any sort subtleties, and trivially independent of input order. The
//! production `adamel_metrics::pr_curve` (one sorted sweep with tie groups)
//! must produce exactly this curve.

/// One `(precision, recall, threshold)` point of the reference curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefPrPoint {
    /// Precision at this threshold.
    pub precision: f64,
    /// Recall at this threshold.
    pub recall: f64,
    /// The score threshold.
    pub threshold: f64,
}

/// The reference PR curve over descending distinct thresholds.
///
/// Empty when there are no positives (matching production). Scores must be
/// finite, also matching production's contract.
pub fn pr_curve_ref(scores: &[f32], labels: &[bool]) -> Vec<RefPrPoint> {
    assert_eq!(scores.len(), labels.len(), "pr_curve_ref length mismatch");
    assert!(scores.iter().all(|s| s.is_finite()), "pr_curve_ref: scores must be finite");
    let total_pos = labels.iter().filter(|&&l| l).count();
    if total_pos == 0 || scores.is_empty() {
        return Vec::new();
    }
    // Distinct thresholds, descending. `==` merges +0.0 with -0.0 the same
    // way the `score >= t` scan below treats them as one group.
    let mut thresholds: Vec<f32> = scores.to_vec();
    thresholds.sort_by(|a, b| b.total_cmp(a));
    thresholds.dedup_by(|a, b| a == b);

    let mut points = Vec::with_capacity(thresholds.len());
    for &t in &thresholds {
        let mut tp = 0usize;
        let mut fp = 0usize;
        for (&s, &l) in scores.iter().zip(labels) {
            if s >= t {
                if l {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
        }
        points.push(RefPrPoint {
            precision: tp as f64 / (tp + fp) as f64,
            recall: tp as f64 / total_pos as f64,
            threshold: f64::from(t),
        });
    }
    points
}

/// Average-precision PRAUC from the reference curve.
pub fn pr_auc_ref(scores: &[f32], labels: &[bool]) -> f64 {
    let mut auc = 0.0;
    let mut prev_recall = 0.0;
    for p in pr_curve_ref(scores, labels) {
        auc += (p.recall - prev_recall) * p.precision;
        prev_recall = p.recall;
    }
    auc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sklearn_example() {
        let scores = [0.1, 0.4, 0.35, 0.8];
        let labels = [false, false, true, true];
        assert!((pr_auc_ref(&scores, &labels) - 0.8333333).abs() < 1e-6);
    }

    #[test]
    fn all_ties_give_prevalence() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert!((pr_auc_ref(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_positives_is_zero() {
        assert!(pr_auc_ref(&[0.5, 0.1], &[false, false]).abs() < 1e-12);
        assert!(pr_auc_ref(&[], &[]).abs() < 1e-12);
    }

    #[test]
    fn permutation_invariant_by_construction() {
        let scores = [0.9, 0.7, 0.7, 0.4, 0.2, 0.7];
        let labels = [true, false, true, true, false, false];
        let base = pr_auc_ref(&scores, &labels);
        let perm = [5usize, 2, 0, 4, 1, 3];
        let s2: Vec<f32> = perm.iter().map(|&i| scores[i]).collect();
        let l2: Vec<bool> = perm.iter().map(|&i| labels[i]).collect();
        assert!((pr_auc_ref(&s2, &l2) - base).abs() < 1e-15);
    }

    #[test]
    fn signed_zero_scores_form_one_group() {
        let scores = [0.0f32, -0.0, 0.5];
        let labels = [true, false, true];
        let curve = pr_curve_ref(&scores, &labels);
        assert_eq!(curve.len(), 2, "±0.0 must merge into one threshold group");
    }
}
