//! `f64` re-derivation of the paper equations end-to-end.
//!
//! [`encode_pairs_ref`] mirrors the contrastive feature extraction (Eq. 2–3),
//! [`ModelOracle::forward`] the network (Eq. 4–7), the loss helpers Eq. 8–10,
//! and [`support_weights_ref`] the distance-ratio weights (Eq. 11–12) — all
//! computed with naive `f64` arithmetic over the *same* parameters as the
//! production model, so the two stacks can be diffed at every interface.
//!
//! The only shared primitive is the discrete n-gram hash
//! ([`HashedFastText::embed_token`]): its per-token `f32` vectors are the
//! boundary constants of Eq. 3, and the oracle performs every summation on
//! top of them in `f64`.

use crate::refmat::RefMatrix;
use adamel::{AdamelConfig, AdamelModel};
use adamel_schema::{EntityPair, FeatureMode, Schema};
use adamel_text::{shared_and_unique, tokenize_cropped, HashedFastText};

/// Encodes pairs into the `n x (F*D)` block exactly as the production
/// [`adamel_schema::FeatureExtractor`] does, but summing token embeddings in
/// `f64` (Eq. 3). The embedder is rebuilt from the config, so this shares no
/// state with the model under test.
pub fn encode_pairs_ref(schema: &Schema, cfg: &AdamelConfig, pairs: &[EntityPair]) -> RefMatrix {
    let embedder = HashedFastText::new(cfg.embed_dim, cfg.seed);
    let d = cfg.embed_dim;
    let f = schema.len() * cfg.feature_mode.per_attribute();
    let mut out = RefMatrix::zeros(pairs.len(), f * d);

    let missing = embedder.missing_vector();
    let write_block = |out: &mut RefMatrix, row: usize, block: usize, tokens: &[String]| {
        let mut acc = vec![0.0f64; d];
        if tokens.is_empty() {
            for (a, &b) in acc.iter_mut().zip(missing.as_slice()) {
                *a = f64::from(b);
            }
        } else {
            for t in tokens {
                for (a, &b) in acc.iter_mut().zip(&embedder.embed_token(t)) {
                    *a += f64::from(b);
                }
            }
        }
        for (j, &v) in acc.iter().enumerate() {
            out.set(row, block * d + j, v);
        }
    };

    for (i, pair) in pairs.iter().enumerate() {
        let mut block = 0;
        for attr in schema.attributes() {
            let left =
                pair.left.get(attr).map(|v| tokenize_cropped(v, cfg.crop)).unwrap_or_default();
            let right =
                pair.right.get(attr).map(|v| tokenize_cropped(v, cfg.crop)).unwrap_or_default();
            let (shared, unique) = shared_and_unique(&left, &right);
            match cfg.feature_mode {
                FeatureMode::SharedOnly => {
                    write_block(&mut out, i, block, &shared);
                    block += 1;
                }
                FeatureMode::UniqueOnly => {
                    write_block(&mut out, i, block, &unique);
                    block += 1;
                }
                FeatureMode::Both => {
                    write_block(&mut out, i, block, &shared);
                    write_block(&mut out, i, block + 1, &unique);
                    block += 2;
                }
            }
        }
    }
    out
}

/// Every intermediate of one oracle forward pass (Eq. 4–7).
pub struct RefForward {
    /// Per-feature latent projections `x_j` (Eq. 4), each `n x H`.
    pub xs: Vec<RefMatrix>,
    /// Attention-space projections `t_j = tanh(x_j W)` (Eq. 5), each `n x H'`.
    pub ts: Vec<RefMatrix>,
    /// Attention distribution `f(x)` (Eq. 6), `n x F`.
    pub attention: RefMatrix,
    /// Classifier logits (Eq. 7), `n x 1`.
    pub logits: RefMatrix,
}

/// The production model's parameters promoted to `f64`, with the paper
/// network re-implemented on [`RefMatrix`].
pub struct ModelOracle {
    f: usize,
    d: usize,
    uniform_attention: bool,
    v: Vec<RefMatrix>,
    b: Vec<RefMatrix>,
    w_att: RefMatrix,
    a_att: RefMatrix,
    w1: RefMatrix,
    b1: RefMatrix,
    w2: RefMatrix,
    b2: RefMatrix,
}

impl ModelOracle {
    /// Captures the model's current parameters (snapshot order:
    /// `V[j], b[j]` per feature, then `W_att, a_att, W1, b1, W2, b2`).
    pub fn new(model: &AdamelModel) -> Self {
        let f = model.extractor().num_features();
        let d = model.config().embed_dim;
        let snap = model.snapshot_params();
        assert_eq!(snap.len(), 2 * f + 6, "unexpected parameter count in snapshot");
        let m = |i: usize| RefMatrix::from_matrix(&snap[i]);
        Self {
            f,
            d,
            uniform_attention: model.config().uniform_attention,
            v: (0..f).map(|j| m(2 * j)).collect(),
            b: (0..f).map(|j| m(2 * j + 1)).collect(),
            w_att: m(2 * f),
            a_att: m(2 * f + 1),
            w1: m(2 * f + 2),
            b1: m(2 * f + 3),
            w2: m(2 * f + 4),
            b2: m(2 * f + 5),
        }
    }

    /// The oracle forward pass over an encoded `n x (F*D)` batch.
    pub fn forward(&self, encoded: &RefMatrix) -> RefForward {
        let n = encoded.rows();
        assert_eq!(encoded.cols(), self.f * self.d, "encoded width disagrees with F*D");

        // Per-feature projections x_j = relu(h_j V_j + b_j) (Eq. 4).
        let mut xs = Vec::with_capacity(self.f);
        for j in 0..self.f {
            let h_j = encoded.slice_cols(j * self.d, self.d);
            let z = h_j.matmul(&self.v[j]).add_row_broadcast(&self.b[j]);
            xs.push(z.relu());
        }

        // Attention energies e_j = aᵀ tanh(W x_j) (Eq. 5).
        let mut ts = Vec::with_capacity(self.f);
        let mut energies = Vec::with_capacity(self.f);
        for x_j in &xs {
            let t = x_j.matmul(&self.w_att).map(f64::tanh);
            energies.push(t.matmul(&self.a_att));
            ts.push(t);
        }
        let energy_refs: Vec<&RefMatrix> = energies.iter().collect();
        let e = RefMatrix::concat_cols(&energy_refs);
        let attention = if self.uniform_attention {
            RefMatrix::zeros(n, self.f).map(|_| 1.0 / self.f as f64)
        } else {
            e.softmax_rows()
        };

        // Weighted features z_j = relu(g_j ⊙ t_j) and the classifier (Eq. 7).
        let mut zs = Vec::with_capacity(self.f);
        for (j, t_j) in ts.iter().enumerate() {
            let g_j = attention.slice_cols(j, 1);
            zs.push(t_j.mul_col_broadcast(&g_j).relu());
        }
        let z_refs: Vec<&RefMatrix> = zs.iter().collect();
        let z = RefMatrix::concat_cols(&z_refs);
        let hidden = z.matmul(&self.w1).add_row_broadcast(&self.b1).relu();
        let logits = hidden.matmul(&self.w2).add_row_broadcast(&self.b2);

        RefForward { xs, ts, attention, logits }
    }

    /// Match scores `sigmoid(logit)` per row.
    pub fn predict(&self, encoded: &RefMatrix) -> Vec<f64> {
        self.forward(encoded).logits.as_slice().iter().map(|&z| 1.0 / (1.0 + (-z).exp())).collect()
    }
}

/// Mean weighted binary cross-entropy over `n x 1` logits (Eq. 8), using the
/// same numerically stable form as production but in `f64`.
pub fn weighted_bce_ref(logits: &RefMatrix, targets: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(logits.cols(), 1, "weighted_bce_ref expects n x 1 logits");
    assert_eq!(logits.rows(), targets.len(), "weighted_bce_ref targets length mismatch");
    assert_eq!(logits.rows(), weights.len(), "weighted_bce_ref weights length mismatch");
    let n = logits.rows().max(1) as f64;
    let mut total = 0.0;
    for i in 0..logits.rows() {
        let z = logits.get(i, 0);
        total += weights[i] * (z.max(0.0) - z * targets[i] + (-z.abs()).exp().ln_1p());
    }
    total / n
}

/// [`weighted_bce_ref`] with unit weights.
pub fn bce_ref(logits: &RefMatrix, targets: &[f64]) -> f64 {
    weighted_bce_ref(logits, targets, &vec![1.0; targets.len()])
}

/// Mean row-wise `KL(q || p_i)` against a constant `1 x m` target `q`
/// (Eq. 9), `eps`-guarded exactly as production.
pub fn kl_ref(probs: &RefMatrix, target: &RefMatrix, eps: f64) -> f64 {
    assert_eq!(target.rows(), 1, "kl_ref expects a 1 x m target");
    assert_eq!(probs.cols(), target.cols(), "kl_ref shape mismatch");
    let n = probs.rows().max(1) as f64;
    let mut total = 0.0;
    for i in 0..probs.rows() {
        for j in 0..probs.cols() {
            let q = target.get(0, j);
            if q > 0.0 {
                total += q * (q / (probs.get(i, j) + eps)).ln();
            }
        }
    }
    total / n
}

/// The zero-shot objective `(1-λ)·L_base + λ·KL` (Eq. 10).
pub fn zero_loss_ref(base: f64, kl: f64, lambda: f64) -> f64 {
    (1.0 - lambda) * base + lambda * kl
}

/// Distance-ratio support weights of Eq. 11–12 over `f64` attention rows,
/// mirroring production's clamp to `[0.2, 5.0]`, the degenerate-distance
/// guard, and the final mean-1 normalization.
pub fn support_weights_ref(
    att_s: &RefMatrix,
    train_labels: &[f64],
    att_u: &RefMatrix,
    support_labels: &[f64],
) -> Vec<f64> {
    let f = att_s.cols();
    let mut centroid = [vec![0.0f64; f], vec![0.0f64; f]];
    let mut counts = [0usize; 2];
    for (i, &y) in train_labels.iter().enumerate() {
        let c = usize::from(y > 0.5);
        counts[c] += 1;
        for (acc, j) in centroid[c].iter_mut().zip(0..f) {
            *acc += att_s.get(i, j);
        }
    }
    for c in 0..2 {
        let inv = 1.0 / counts[c].max(1) as f64;
        centroid[c].iter_mut().for_each(|v| *v *= inv);
    }

    let dist = |m: &RefMatrix, i: usize, c: &[f64]| -> f64 {
        (0..f).map(|j| (m.get(i, j) - c[j]) * (m.get(i, j) - c[j])).sum::<f64>().sqrt()
    };
    let mut mean_dist = [0.0f64; 2];
    for (i, &y) in train_labels.iter().enumerate() {
        let c = usize::from(y > 0.5);
        mean_dist[c] += dist(att_s, i, &centroid[c]);
    }
    for c in 0..2 {
        mean_dist[c] /= counts[c].max(1) as f64;
        if mean_dist[c] <= f64::from(f32::EPSILON) {
            mean_dist[c] = 1.0;
        }
    }

    let mut weights: Vec<f64> = support_labels
        .iter()
        .enumerate()
        .map(|(i, &y)| {
            let c = usize::from(y > 0.5);
            (dist(att_u, i, &centroid[c]) / mean_dist[c]).clamp(0.2, 5.0)
        })
        .collect();
    let mean = weights.iter().sum::<f64>() / weights.len().max(1) as f64;
    if mean > 0.0 {
        weights.iter_mut().for_each(|w| *w /= mean);
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamel_schema::{Record, SourceId};

    fn pair(l: &[(&str, &str)], r: &[(&str, &str)], label: bool) -> EntityPair {
        let mut a = Record::new(SourceId(0), 0);
        for (k, v) in l {
            a.set(*k, *v);
        }
        let mut b = Record::new(SourceId(1), 1);
        for (k, v) in r {
            b.set(*k, *v);
        }
        EntityPair::labeled(a, b, label)
    }

    fn fixture() -> (Schema, AdamelConfig, Vec<EntityPair>) {
        let schema = Schema::new(vec!["artist".into(), "title".into()]);
        let cfg = AdamelConfig::tiny();
        let pairs = vec![
            pair(&[("title", "hey jude"), ("artist", "beatles")], &[("title", "hey jude")], true),
            pair(&[("title", "abbey road")], &[("title", "let it be"), ("artist", "x")], false),
        ];
        (schema, cfg, pairs)
    }

    #[test]
    fn oracle_encoding_is_close_to_production() {
        let (schema, cfg, pairs) = fixture();
        let model = AdamelModel::new(cfg.clone(), schema.clone());
        let prod = model.encode(&pairs);
        let oracle = encode_pairs_ref(&schema, &cfg, &pairs);
        assert_eq!(prod.shape(), oracle.shape());
        for i in 0..prod.rows() {
            for j in 0..prod.cols() {
                let d = (f64::from(prod.get(i, j)) - oracle.get(i, j)).abs();
                assert!(d < 1e-4, "encode ({i},{j}): {} vs {}", prod.get(i, j), oracle.get(i, j));
            }
        }
    }

    #[test]
    fn oracle_forward_tracks_production() {
        let (schema, cfg, pairs) = fixture();
        let model = AdamelModel::new(cfg, schema);
        let oracle = ModelOracle::new(&model);
        let encoded = RefMatrix::from_matrix(&model.encode(&pairs));
        let fwd = oracle.forward(&encoded);
        let prod_att = model.attention(&pairs);
        for i in 0..prod_att.rows() {
            for j in 0..prod_att.cols() {
                let d = (f64::from(prod_att.get(i, j)) - fwd.attention.get(i, j)).abs();
                assert!(d < 1e-4, "attention ({i},{j}) diverges by {d}");
            }
        }
        let prod_scores = model.predict(&pairs);
        for (p, o) in prod_scores.iter().zip(oracle.predict(&encoded)) {
            assert!((f64::from(*p) - o).abs() < 1e-4, "score {p} vs {o}");
        }
    }

    #[test]
    fn kl_of_target_against_itself_is_near_zero() {
        let q = RefMatrix::from_vec(1, 3, vec![0.2, 0.3, 0.5]);
        let p = RefMatrix::from_vec(2, 3, vec![0.2, 0.3, 0.5, 0.2, 0.3, 0.5]);
        let kl = kl_ref(&p, &q, 1e-7);
        assert!(kl.abs() < 1e-5, "kl {kl}");
    }

    #[test]
    fn support_weights_ref_normalizes_to_mean_one() {
        let att_s = RefMatrix::from_vec(4, 2, vec![0.9, 0.1, 0.8, 0.2, 0.1, 0.9, 0.2, 0.8]);
        let att_u = RefMatrix::from_vec(2, 2, vec![0.5, 0.5, 0.95, 0.05]);
        let w = support_weights_ref(&att_s, &[1.0, 1.0, 0.0, 0.0], &att_u, &[1.0, 0.0]);
        let mean: f64 = w.iter().sum::<f64>() / w.len() as f64;
        assert!((mean - 1.0).abs() < 1e-12);
        assert!(w.iter().all(|&v| v > 0.0));
    }
}
