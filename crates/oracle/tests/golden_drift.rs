//! Cross-PR drift guard: the committed fixtures under `tests/golden/` must
//! still verify bit-for-bit against the current math stack. On intended
//! output changes, re-bless with
//! `cargo run -p adamel-oracle --bin golden -- --bless` and commit the diff.

use adamel_oracle::golden::{builtin_fixtures, fixture_dir};
use adamel_oracle::Fixture;

fn committed_fixtures() -> Vec<Fixture> {
    let dir = fixture_dir();
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| {
            panic!("missing {} ({e}); run the golden bin with --bless", dir.display())
        })
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "golden"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let name = p.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default();
            let text = std::fs::read_to_string(&p).expect("fixture readable");
            Fixture::parse(name, &text).expect("fixture parses")
        })
        .collect()
}

#[test]
fn committed_fixtures_have_not_drifted() {
    let fixtures = committed_fixtures();
    assert!(fixtures.len() >= 2, "expected at least two committed fixtures");
    for f in &fixtures {
        f.verify().unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn committed_fixtures_cover_the_builtin_set() {
    // A renamed or added builtin fixture must be re-blessed into the tree.
    let committed: Vec<String> = committed_fixtures().into_iter().map(|f| f.name).collect();
    for builtin in builtin_fixtures() {
        assert!(
            committed.contains(&builtin.name),
            "builtin fixture {} is not committed; run the golden bin with --bless",
            builtin.name
        );
    }
}

#[test]
fn committed_bits_match_a_fresh_bless() {
    // The serialized text itself (not just verify()) must be reproducible, so
    // a --bless run on an unchanged stack yields a clean `git status`.
    let committed = committed_fixtures();
    for builtin in builtin_fixtures() {
        let on_disk = committed
            .iter()
            .find(|f| f.name == builtin.name)
            .unwrap_or_else(|| panic!("{} missing from tests/golden", builtin.name));
        assert_eq!(
            on_disk.serialize(),
            builtin.serialize(),
            "{}: committed fixture differs from a fresh bless",
            builtin.name
        );
    }
}
