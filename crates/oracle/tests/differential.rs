//! Differential suite: the production math stack against the `f64` oracle.
//!
//! Three layers, mirroring the crate: raw kernels (matmul family, softmax)
//! under both serial and multi-threaded dispatch, random tape programs with
//! forward + gradient checks, and the model-level paper equations.

use adamel::{support_weights, AdamelConfig, AdamelModel};
use adamel_data::{make_mel_split, EntityType, MusicConfig, MusicWorld, Scenario, SplitCounts};
use adamel_oracle::{
    check_program, check_with_fault, encode_pairs_ref, gen_program, op_ulps, reduction_budget,
    render_reproducer, support_weights_ref, Budget, Fault, ModelOracle, RefMatrix, EPS32,
};
use adamel_schema::EntityPair;
use adamel_tensor::parallel::with_threads;
use adamel_tensor::{Graph, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-2.0..2.0)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Asserts every element of `prod` is an acceptable realization of `oracle`,
/// with the reduction budget scaled per element by `abs_scale`.
fn assert_close(what: &str, prod: &Matrix, oracle: &RefMatrix, ulps: u64, abs_scale: &RefMatrix) {
    assert_eq!((prod.rows(), prod.cols()), oracle.shape(), "{what}: shape mismatch");
    for i in 0..prod.rows() {
        for j in 0..prod.cols() {
            let budget = Budget { ulps, abs: abs_scale.get(i, j) };
            assert!(
                budget.accepts(prod.get(i, j), oracle.get(i, j)),
                "{what}[{i},{j}]: production {:e} vs oracle {:e} outside {budget:?}",
                prod.get(i, j),
                oracle.get(i, j)
            );
        }
    }
}

fn check_matmul_family(threads: usize) {
    let mut rng = StdRng::seed_from_u64(0xd1ff ^ threads as u64);
    for &(m, k, n) in &[(1usize, 1usize, 1usize), (7, 13, 5), (33, 17, 9), (64, 96, 3)] {
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, k, n);
        let ra = RefMatrix::from_matrix(&a);
        let rb = RefMatrix::from_matrix(&b);
        // Forward-error scale |A|·|B| per element covers cancellation.
        let scale = ra.map(f64::abs).matmul(&rb.map(f64::abs));
        let abs = scale.map(|s| (k as f64 + 4.0) * EPS32 * s);
        let ulps = op_ulps("matmul", k);
        let (p, p_tn, p_nt) = with_threads(threads, || {
            (a.matmul(&b), a.transpose().matmul_tn(&b), a.matmul_nt(&b.transpose()))
        });
        assert_close("matmul", &p, &ra.matmul(&rb), ulps, &abs);
        assert_close("matmul_tn", &p_tn, &ra.matmul(&rb), ulps, &abs);
        assert_close("matmul_nt", &p_nt, &ra.matmul(&rb), ulps, &abs);
    }
}

#[test]
fn matmul_family_matches_oracle_serial() {
    check_matmul_family(1);
}

#[test]
fn matmul_family_matches_oracle_threaded() {
    check_matmul_family(4);
}

#[test]
fn softmax_rows_matches_oracle() {
    let mut rng = StdRng::seed_from_u64(0x50f7);
    for &(n, m) in &[(1usize, 1usize), (5, 4), (17, 9)] {
        let x = random_matrix(&mut rng, n, m);
        let oracle = RefMatrix::from_matrix(&x).softmax_rows();
        let budget = reduction_budget("softmax_rows", m, 1.0);
        let abs = RefMatrix::zeros(n, m).map(|_| budget.abs);
        for threads in [1usize, 4] {
            let prod = with_threads(threads, || x.softmax_rows());
            assert_close("softmax_rows", &prod, &oracle, budget.ulps, &abs);
        }
    }
}

fn sweep(threads: usize) {
    for i in 0..40u64 {
        let seed = i.wrapping_mul(1007).wrapping_add(3);
        let program = gen_program(seed, 10);
        if let Err(d) = with_threads(threads, || check_program(&program)) {
            panic!(
                "seed {seed} ({threads} threads): {d}\nreproducer:\n{}",
                render_reproducer(&program)
            );
        }
    }
}

#[test]
fn generated_program_sweep_serial() {
    sweep(1);
}

#[test]
fn generated_program_sweep_threaded() {
    sweep(4);
}

#[test]
fn injected_kernel_bugs_are_caught() {
    // A mutation check on the harness itself: perturbing any intermediate by
    // a relative 1e-3 — far outside every budget — must surface as a
    // discrepancy, on the faulted node or downstream of it.
    let mut checked = 0;
    for seed in 0..6u64 {
        let program = gen_program(seed.wrapping_mul(77).wrapping_add(5), 8);
        assert!(check_program(&program).is_ok(), "clean program must pass (seed {seed})");
        for inst in 0..program.insts.len() {
            if program.insts[inst].parents().is_empty() {
                continue; // faulting a leaf changes the real input, not the op
            }
            let fault = Fault { inst, rel: 1e-3 };
            assert!(
                check_with_fault(&program, Some(fault)).is_err(),
                "fault at inst {inst} of seed-{seed} program went undetected"
            );
            checked += 1;
        }
    }
    assert!(checked > 20, "mutation sweep too small ({checked} faults)");
}

/// Small labeled world shared by the model-level tests.
fn world_pairs() -> (adamel_schema::Schema, Vec<EntityPair>, Vec<EntityPair>) {
    let world = MusicWorld::generate(&MusicConfig::tiny(), 3);
    let records = world.records_of(EntityType::Artist, None);
    let split = make_mel_split(
        &records,
        "name",
        &[0, 1, 2],
        &[3, 4, 5, 6],
        Scenario::Overlapping,
        &SplitCounts::tiny(),
        7,
    );
    let train: Vec<EntityPair> = split.train.pairs.iter().take(20).cloned().collect();
    let support: Vec<EntityPair> = split.support.pairs.iter().take(12).cloned().collect();
    (world.schema().clone(), train, support)
}

#[test]
fn pair_encoding_matches_oracle() {
    let (schema, pairs, _) = world_pairs();
    for mode in [adamel_schema::FeatureMode::Both, adamel_schema::FeatureMode::SharedOnly] {
        let cfg = AdamelConfig::tiny().with_feature_mode(mode);
        let model = AdamelModel::new(cfg.clone(), schema.clone());
        let reference = encode_pairs_ref(&schema, &cfg, &pairs);
        for threads in [1usize, 4] {
            let prod = with_threads(threads, || model.encode(&pairs));
            assert_eq!((prod.rows(), prod.cols()), reference.shape());
            for i in 0..prod.rows() {
                for j in 0..prod.cols() {
                    let (p, o) = (f64::from(prod.get(i, j)), reference.get(i, j));
                    assert!(
                        (p - o).abs() <= 1e-4 * o.abs().max(1.0),
                        "encode[{i},{j}] ({threads} threads): {p:e} vs oracle {o:e}"
                    );
                }
            }
        }
    }
}

#[test]
fn model_forward_matches_oracle() {
    let (schema, pairs, _) = world_pairs();
    for cfg in
        [AdamelConfig::tiny(), AdamelConfig::tiny().with_seed(9).with_uniform_attention(true)]
    {
        let model = AdamelModel::new(cfg.clone(), schema.clone());
        let oracle = ModelOracle::new(&model);
        let fwd = oracle.forward(&encode_pairs_ref(&schema, &cfg, &pairs));
        for threads in [1usize, 4] {
            let (att, logits, preds) = with_threads(threads, || {
                let encoded = model.encode(&pairs);
                let preds = model.predict_encoded(&encoded);
                let mut g = Graph::new();
                let (att, logits) = model.forward_graph(&mut g, encoded);
                (g.value(att).clone(), g.value(logits).clone(), preds)
            });
            for (i, &pred) in preds.iter().enumerate() {
                let (p, o) = (f64::from(logits.get(i, 0)), fwd.logits.get(i, 0));
                assert!(
                    (p - o).abs() <= 1e-3 * o.abs().max(1.0),
                    "logit {i} ({threads} threads): {p:e} vs oracle {o:e}"
                );
                let sig = 1.0 / (1.0 + (-o).exp());
                assert!(
                    (f64::from(pred) - sig).abs() <= 1e-3,
                    "prediction {i} ({threads} threads) off oracle sigmoid"
                );
                for j in 0..att.cols() {
                    let d = (f64::from(att.get(i, j)) - fwd.attention.get(i, j)).abs();
                    assert!(d <= 1e-3, "attention ({i},{j}) ({threads} threads) off by {d:e}");
                }
            }
        }
    }
}

#[test]
fn losses_match_oracle() {
    let (schema, pairs, _) = world_pairs();
    let cfg = AdamelConfig::tiny();
    let model = AdamelModel::new(cfg.clone(), schema.clone());
    let oracle = ModelOracle::new(&model);
    let fwd = oracle.forward(&encode_pairs_ref(&schema, &cfg, &pairs));

    let labels_f32: Vec<f32> =
        pairs.iter().map(|p| if p.label == Some(true) { 1.0 } else { 0.0 }).collect();
    let labels_f64: Vec<f64> = labels_f32.iter().map(|&v| f64::from(v)).collect();
    let weights_f32: Vec<f32> = (0..pairs.len()).map(|i| 0.5 + 0.1 * i as f32).collect();
    let weights_f64: Vec<f64> = weights_f32.iter().map(|&v| f64::from(v)).collect();

    let encoded = model.encode(&pairs);
    let mut g = Graph::new();
    let (att, logits) = model.forward_graph(&mut g, encoded);
    let y = Matrix::from_vec(labels_f32.len(), 1, labels_f32);
    let w = Matrix::from_vec(weights_f32.len(), 1, weights_f32);
    let bce = g.weighted_bce_with_logits(logits, y, w);
    let target = g.value(att).mean_rows();
    let kl = g.kl_const_rows(att, target.clone(), 1e-7);

    let bce_o = adamel_oracle::weighted_bce_ref(&fwd.logits, &labels_f64, &weights_f64);
    assert!(
        (f64::from(g.value(bce).item()) - bce_o).abs() <= 1e-3 * bce_o.abs().max(1.0),
        "weighted bce {} vs oracle {bce_o}",
        g.value(bce).item()
    );

    let target_ref = RefMatrix::from_matrix(&target);
    let kl_o = adamel_oracle::kl_ref(&fwd.attention, &target_ref, 1e-7);
    assert!(
        (f64::from(g.value(kl).item()) - kl_o).abs() <= 1e-3 * kl_o.abs().max(1.0),
        "kl {} vs oracle {kl_o}",
        g.value(kl).item()
    );

    let zero_o = adamel_oracle::zero_loss_ref(bce_o, kl_o, f64::from(cfg.lambda));
    let prod_zero = (1.0 - f64::from(cfg.lambda)) * f64::from(g.value(bce).item())
        + f64::from(cfg.lambda) * f64::from(g.value(kl).item());
    assert!((prod_zero - zero_o).abs() <= 1e-3 * zero_o.abs().max(1.0));
}

#[test]
fn support_weights_match_oracle() {
    let (schema, train, support) = world_pairs();
    let cfg = AdamelConfig::tiny();
    let model = AdamelModel::new(cfg.clone(), schema.clone());
    let oracle = ModelOracle::new(&model);

    let train_enc = model.encode(&train);
    let support_enc = model.encode(&support);
    let train_labels: Vec<f32> =
        train.iter().map(|p| if p.label == Some(true) { 1.0 } else { 0.0 }).collect();
    let support_labels: Vec<f32> =
        support.iter().map(|p| if p.label == Some(true) { 1.0 } else { 0.0 }).collect();

    let att_s = oracle.forward(&encode_pairs_ref(&schema, &cfg, &train)).attention;
    let att_u = oracle.forward(&encode_pairs_ref(&schema, &cfg, &support)).attention;
    let labels_s: Vec<f64> = train_labels.iter().map(|&v| f64::from(v)).collect();
    let labels_u: Vec<f64> = support_labels.iter().map(|&v| f64::from(v)).collect();
    let reference = support_weights_ref(&att_s, &labels_s, &att_u, &labels_u);

    for threads in [1usize, 4] {
        let prod = with_threads(threads, || {
            support_weights(&model, &train_enc, &train_labels, &support_enc, &support_labels)
        });
        assert_eq!(prod.len(), reference.len());
        for (i, (&p, &o)) in prod.iter().zip(&reference).enumerate() {
            assert!(
                (f64::from(p) - o).abs() <= 5e-3 * o.abs().max(1.0),
                "support weight {i} ({threads} threads): {p:e} vs oracle {o:e}"
            );
        }
    }
}
