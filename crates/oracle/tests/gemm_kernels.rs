//! Blocked-GEMM kernel battery: the cache-blocked microkernels behind the
//! matmul family, differentially tested against the `f64` oracle at
//! adversarial shapes — 1×1, prime dims, every tile edge ±1, tall-skinny,
//! short-fat — crossed with 1/2/4/8 worker threads, plus bit-for-bit
//! thread-count invariance for every variant at every shape.
//!
//! Budgets come from [`op_ulps`]: `2k + 4 + 2·⌈k/KC⌉` ULPs for the matmul
//! family (the per-KC-panel term deliberately licenses panel-split
//! reassociation; today's kernels are stricter — bit-identical to the
//! historical naive loops), with the `(k+4)·ε₃₂·(|A|·|B|)` absolute
//! fallback covering cancellation.

use adamel_oracle::{op_ulps, Budget, RefMatrix, EPS32};
use adamel_tensor::gemm::{use_blocked, KC, MC, MR, NR};
use adamel_tensor::parallel::with_threads;
use adamel_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Adversarial `(n, k, m)` shapes for `C = A(n×k) · B(k×m)`.
///
/// Covers: degenerate 1×1, prime dims, the microkernel register tile
/// (`MR`/`NR`) and cache tiles (`KC`/`MC`) at exactly/-1/+1, tall-skinny,
/// and short-fat — on both sides of the blocked-dispatch threshold.
fn shapes() -> Vec<(usize, usize, usize)> {
    vec![
        (1, 1, 1),
        (2, 3, 5),
        (7, 13, 11),
        (MR, 3, NR),
        (MR - 1, 5, NR - 1),
        (MR + 1, 5, NR + 1),
        (MR * 3 + 1, KC - 1, NR * 2 + 3),
        (MC - 1, 7, NR),
        (MC, 9, NR * 2),
        (MC + 1, KC + 1, NR * 2 + 1),
        (17, KC, 13),
        // Tall-skinny: many rows, tiny inner/output dims.
        (KC + 3, MR, 2),
        (257, 5, 3),
        // Short-fat: few rows, wide output.
        (3, 5, 257),
        (2, KC + 1, NR * 4 + 3),
        // Comfortably blocked.
        (64, 96, 33),
    ]
}

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-2.0..2.0)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Asserts every element of `prod` is an acceptable `f32` realization of the
/// oracle, with the per-element absolute fallback scaled by `|A|·|B|`.
fn assert_close(what: &str, prod: &Matrix, oracle: &RefMatrix, ulps: u64, abs: &RefMatrix) {
    assert_eq!((prod.rows(), prod.cols()), oracle.shape(), "{what}: shape mismatch");
    for i in 0..prod.rows() {
        for j in 0..prod.cols() {
            let budget = Budget { ulps, abs: abs.get(i, j) };
            assert!(
                budget.accepts(prod.get(i, j), oracle.get(i, j)),
                "{what}[{i},{j}]: production {:e} vs oracle {:e} outside {budget:?}",
                prod.get(i, j),
                oracle.get(i, j)
            );
        }
    }
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Runs all three variants at one shape under every thread count: each must
/// match the oracle within budget, and each must be bit-for-bit identical
/// across thread counts (block boundaries are a function of the tile sizes
/// alone, never the thread count).
fn check_shape(n: usize, k: usize, m: usize) {
    let seed = 0x6e44 ^ ((n as u64) << 24 | (k as u64) << 12 | m as u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let a = random_matrix(&mut rng, n, k);
    let b = random_matrix(&mut rng, k, m);
    let ra = RefMatrix::from_matrix(&a);
    let rb = RefMatrix::from_matrix(&b);
    let oracle = ra.matmul(&rb);
    let scale = ra.map(f64::abs).matmul(&rb.map(f64::abs));
    let abs = scale.map(|s| (k as f64 + 4.0) * EPS32 * s);
    let ulps = op_ulps("matmul", k);

    let at = a.transpose();
    let bt = b.transpose();
    let mut baselines: Option<[Vec<u32>; 3]> = None;
    for threads in [1usize, 2, 4, 8] {
        let (p, p_tn, p_nt) =
            with_threads(threads, || (a.matmul(&b), at.matmul_tn(&b), a.matmul_nt(&bt)));
        let what = |v: &str| format!("{v} {n}x{k}x{m} @{threads}t");
        assert_close(&what("matmul"), &p, &oracle, ulps, &abs);
        assert_close(&what("matmul_tn"), &p_tn, &oracle, ulps, &abs);
        assert_close(&what("matmul_nt"), &p_nt, &oracle, ulps, &abs);
        let got = [bits(&p), bits(&p_tn), bits(&p_nt)];
        match &baselines {
            None => baselines = Some(got),
            Some(base) => {
                for (v, (g, b)) in
                    ["matmul", "matmul_tn", "matmul_nt"].iter().zip(got.iter().zip(base))
                {
                    assert_eq!(g, b, "{}: not thread-count invariant", what(v));
                }
            }
        }
    }
}

#[test]
fn adversarial_shapes_cover_both_dispatch_paths() {
    // The battery is only adversarial if it actually exercises the blocked
    // kernels AND the naive fallback; pin that the shape list straddles the
    // dispatch predicate so tile-size changes can't silently defang it.
    let covered: Vec<bool> = shapes().iter().map(|&(n, k, m)| use_blocked(n, k, m)).collect();
    assert!(covered.iter().any(|&c| c), "no shape reaches the blocked kernels");
    assert!(covered.iter().any(|&c| !c), "no shape reaches the naive fallback");
}

#[test]
fn degenerate_and_prime_shapes() {
    for &(n, k, m) in &shapes()[..3] {
        check_shape(n, k, m);
    }
}

#[test]
fn register_tile_edges() {
    for &(n, k, m) in &shapes()[3..7] {
        check_shape(n, k, m);
    }
}

#[test]
fn cache_tile_edges() {
    for &(n, k, m) in &shapes()[7..11] {
        check_shape(n, k, m);
    }
}

#[test]
fn tall_skinny_and_short_fat() {
    for &(n, k, m) in &shapes()[11..15] {
        check_shape(n, k, m);
    }
}

#[test]
fn comfortably_blocked() {
    for &(n, k, m) in &shapes()[15..] {
        check_shape(n, k, m);
    }
}

#[test]
fn zero_sized_edges_are_well_formed() {
    // n/m = 0 produce empty outputs; k = 0 must produce exact zeros (the
    // blocked path reuses packing arenas, so stale data must not leak).
    let a = Matrix::zeros(0, 5);
    let b = Matrix::zeros(5, 7);
    assert_eq!(a.matmul(&b).shape(), (0, 7));
    let a = Matrix::from_vec(3, 0, vec![]);
    let b = Matrix::from_vec(0, 4, vec![]);
    let c = a.matmul(&b);
    assert_eq!(c.shape(), (3, 4));
    assert!(c.as_slice().iter().all(|&v| v == 0.0 && v.to_bits() == 0));
}
