//! Offline stand-in for `serde`.
//!
//! The workspace's schema types derive `Serialize`/`Deserialize` for
//! forward-compatibility but nothing serializes them yet, so marker traits
//! plus no-op derives are sufficient to compile without registry access.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
