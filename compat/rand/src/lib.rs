//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal, deterministic implementation of exactly the `rand 0.8` API
//! surface it uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` methods `gen_range` (half-open and inclusive integer/float ranges)
//! and `gen_bool`. The generator is splitmix64 — statistically solid for
//! simulation workloads and stable across platforms, though its stream
//! intentionally does **not** match upstream `StdRng` (ChaCha12); all
//! in-repo seeds produce self-consistent, reproducible runs.

use std::ops::{Range, RangeInclusive};

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `gen_range` can sample uniformly.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive` extends to `[lo, hi]`).
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let (lo_w, hi_w) = (lo as i128, hi as i128);
                let span = hi_w - lo_w + i128::from(inclusive);
                assert!(span > 0, "gen_range: empty range");
                // Modulo draw; the bias is < 2^-64 * span, irrelevant for
                // the simulation/test workloads in this repository.
                (lo_w + (rng.next_u64() as i128 % span)) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let _ = inclusive; // [lo, hi) and [lo, hi] coincide a.e.
                assert!(lo < hi || (inclusive && lo <= hi), "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// User-facing random value methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand`'s `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up step decorrelates small consecutive seeds.
            let mut rng = StdRng { state: seed ^ 0x5851_f42d_4c95_7f2d };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5i32..9);
            assert!((5..9).contains(&v));
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = rng.gen_range(0u64..=4);
            assert!(u <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
