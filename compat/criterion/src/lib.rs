//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use — `benchmark_group`/`sample_size`/`bench_function`/`iter` and the
//! `criterion_group!`/`criterion_main!` macros — as a minimal wall-clock
//! harness: each benchmark runs a short warm-up, then `sample_size`
//! timed samples, and prints mean/min per iteration. No statistics, plots,
//! or CLI filtering.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {}", name);
        BenchmarkGroup { criterion: self, name: name.to_string(), sample_size: None }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(id, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(&format!("{}/{}", self.name, id), samples, f);
        self
    }

    /// Ends the group (formatting no-op, kept for API parity).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` times the provided routine.
pub struct Bencher {
    samples: usize,
    per_iter: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, retaining per-sample wall-clock durations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up iteration, untimed.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.per_iter.push(start.elapsed());
        }
    }
}

fn run_bench(id: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { samples, per_iter: Vec::new() };
    f(&mut b);
    if b.per_iter.is_empty() {
        println!("  {:<40} (no samples)", id);
        return;
    }
    let total: Duration = b.per_iter.iter().sum();
    let mean = total / b.per_iter.len() as u32;
    let min = b.per_iter.iter().min().copied().unwrap_or_default();
    println!(
        "  {:<40} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        id,
        mean,
        min,
        b.per_iter.len()
    );
}

/// Declares a benchmark group function list (plain-list form only).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
