//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` implementations.
//!
//! The workspace derives serde traits on a few schema types but never
//! serializes them today; these derives expand to nothing so the types
//! compile offline. Swap back to real serde_derive when the registry is
//! reachable and serialization is actually exercised.

use proc_macro::TokenStream;

/// Expands to nothing; the marker trait impl is unnecessary because no
/// code path bounds on `Serialize` yet.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see [`derive_serialize`].
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
