//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

/// Acceptable element-count specifications for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `BTreeMap`s from key/value strategies. Duplicate keys collapse,
/// so the final size may be below the drawn target (matching upstream's
/// observable behavior for narrow key spaces).
pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy { keys, values, size: size.into() }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.draw(rng);
        (0..n).map(|_| (self.keys.generate(rng), self.values.generate(rng))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_specs() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..100 {
            assert_eq!(vec(0u8..5, 3usize).generate(&mut rng).len(), 3);
            let v = vec(0u8..5, 1..4).generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
        }
    }

    #[test]
    fn btree_map_bounded_by_target() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            let m = btree_map("[a-c]", 0u8..9, 0..4).generate(&mut rng);
            assert!(m.len() <= 3);
        }
    }
}
