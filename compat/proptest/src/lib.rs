//! Offline stand-in for `proptest`, implementing the subset of the API this
//! workspace uses: the `proptest!` macro, `prop_assert*`/`prop_assume!`,
//! numeric-range / regex-string / tuple / collection strategies, `any::<bool>()`,
//! and `prop_map`.
//!
//! Differences from upstream, by design:
//! - **No shrinking.** A failing case reports the generated inputs as-is.
//! - **Deterministic seeding.** The RNG seed is derived from the test-function
//!   name, so runs are reproducible without a persistence file
//!   (`.proptest-regressions` files are ignored).
//! - **Regex strategies** support the literal/class/`{m,n}` subset that the
//!   in-repo tests use, not full regex syntax.

pub mod strategy;

pub mod test_runner;

pub mod arbitrary;

pub mod collection;

/// The glob-imported convenience surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares a block of property tests.
///
/// Accepts an optional `#![proptest_config(..)]` inner attribute followed by
/// `#[test] fn name(pat in strategy, ..) { body }` items, mirroring upstream
/// syntax. Outer attributes (including `#[test]` itself) are passed through
/// verbatim.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                    let ($($arg,)+) =
                        ($($crate::strategy::Strategy::generate(&($strat), __rng),)+);
                    let __outcome: $crate::test_runner::TestCaseResult =
                        (|| { $body Ok(()) })();
                    __outcome
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Fails the current case (with an optional formatted message) unless the
/// condition holds. Must be used inside `proptest!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __l
        );
    }};
}

/// Discards the current case (without counting it) unless the condition
/// holds; the runner draws a replacement case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
