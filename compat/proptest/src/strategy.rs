//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream, a strategy here is just a generator: `generate` draws one
/// value from the distribution. All upstream combinator names used in this
/// workspace (`prop_map`) are provided.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Delegation so `&S` (e.g. a reused element strategy) is itself a strategy.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "empty integer range strategy");
                (lo + rng.below((hi - lo) as u64) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty integer range strategy");
                (lo + rng.below((hi - lo + 1) as u64) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E), (A, B, C, D, E, F));

/// String strategies from regex literals, e.g. `"[a-z ]{0,12}"` or `".{0,60}"`.
///
/// Supported subset (all this workspace uses): a sequence of units, each `.`,
/// `[class]` (chars and `a-z` ranges), or a literal char, optionally followed
/// by `{n}` / `{m,n}`. `.` draws mostly printable ASCII with a tail of
/// arbitrary Unicode scalars so text-normalization properties see non-ASCII
/// input.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Debug)]
enum CharSet {
    /// `.`: arbitrary character.
    Any,
    /// `[...]`: explicit members.
    OneOf(Vec<(char, char)>),
}

impl CharSet {
    fn draw(&self, rng: &mut TestRng) -> char {
        match self {
            CharSet::Any => {
                if rng.below(10) < 7 {
                    // Printable ASCII.
                    char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap()
                } else {
                    // Arbitrary scalar value, skipping the surrogate gap.
                    loop {
                        if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                            return c;
                        }
                    }
                }
            }
            CharSet::OneOf(ranges) => {
                let total: u64 =
                    ranges.iter().map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1).sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let span = (*hi as u64) - (*lo as u64) + 1;
                    if pick < span {
                        return char::from_u32(*lo as u32 + pick as u32)
                            .expect("character class range crosses the surrogate gap");
                    }
                    pick -= span;
                }
                unreachable!()
            }
        }
    }
}

struct Unit {
    set: CharSet,
    min: u64,
    max: u64,
}

fn parse_pattern(pattern: &str) -> Vec<Unit> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut units = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '.' => {
                i += 1;
                CharSet::Any
            }
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed character class in `{}`", pattern))
                    + i;
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                assert!(!ranges.is_empty(), "empty character class in `{}`", pattern);
                i = close + 1;
                CharSet::OneOf(ranges)
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "dangling escape in `{}`", pattern);
                let c = chars[i + 1];
                i += 2;
                CharSet::OneOf(vec![(c, c)])
            }
            c => {
                i += 1;
                CharSet::OneOf(vec![(c, c)])
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed repetition in `{}`", pattern))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition lower bound"),
                    hi.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n: u64 = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in `{}`", pattern);
        units.push(Unit { set, min, max });
    }
    units
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for unit in parse_pattern(pattern) {
        let count = unit.min + rng.below(unit.max - unit.min + 1);
        for _ in 0..count {
            out.push(unit.set.draw(rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3u32..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let f = (-2.0f32..2.0).generate(&mut r);
            assert!((-2.0..2.0).contains(&f));
            let i = (0i64..=4).generate(&mut r);
            assert!((0..=4).contains(&i));
        }
    }

    #[test]
    fn regex_classes_and_repetitions() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-c]".generate(&mut r);
            assert_eq!(s.chars().count(), 1);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));

            let s = "[a-z ]{0,12}".generate(&mut r);
            assert!(s.chars().count() <= 12);
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));

            let s = "[a-z0-9]{1,20}".generate(&mut r);
            let n = s.chars().count();
            assert!((1..=20).contains(&n));

            let s = ".{0,60}".generate(&mut r);
            assert!(s.chars().count() <= 60);
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let mut r = rng();
        let strat = (0u32..6, 0u64..40).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..100 {
            assert!(strat.generate(&mut r) < 46);
        }
    }

    #[test]
    fn just_yields_constant() {
        let mut r = rng();
        assert_eq!(Just(7u8).generate(&mut r), 7);
    }
}
