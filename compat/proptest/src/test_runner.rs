//! Case runner and deterministic RNG for the proptest stand-in.

/// Per-block configuration (`#![proptest_config(ProptestConfig::with_cases(n))]`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite fast while still
        // exercising ragged shapes and edge values.
        Config { cases: 64 }
    }
}

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's assumptions did not hold; draw a replacement case.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant from any message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic splitmix64 generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream; equal seeds give equal streams on every platform.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias < 2^-64 * bound: negligible for test generation.
        self.next_u64() % bound
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a, used to derive a per-test seed from the test name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `config.cases` successful cases of `case`, panicking on the first
/// assertion failure. Rejected cases (via `prop_assume!`) are redrawn and do
/// not count, up to a global attempt cap.
pub fn run_cases(
    config: &Config,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let mut rng = TestRng::from_seed(fnv1a(name.as_bytes()));
    let max_attempts = (config.cases as u64).saturating_mul(16).max(64);
    let mut passed: u32 = 0;
    let mut attempts: u64 = 0;
    while passed < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "property `{}`: too many rejected cases ({} attempts for {} passes)",
            name,
            attempts,
            passed,
        );
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{}` failed at case {}: {}", name, passed, msg)
            }
        }
    }
}
