//! `any::<T>()` support for the types this workspace generates.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (`any::<bool>()` etc.).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Uniform `bool` strategy.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_via_full_range {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = std::ops::RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}
arbitrary_via_full_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
