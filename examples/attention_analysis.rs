//! Attention analysis: inspect the attribute importance AdaMEL learns as
//! its transferable knowledge, then retrain on only the top attributes —
//! the paper's Table 4/5 workflow, useful for schema debugging in practice.
//!
//! ```text
//! cargo run --release -p adamel --example attention_analysis
//! ```

use adamel::{
    attribute_importance, evaluate_prauc, fit, top_attribute_schemas, AdamelConfig, AdamelModel,
    Variant,
};
use adamel_data::{make_mel_split, MonitorConfig, MonitorWorld, Scenario, SplitCounts};

fn main() {
    let world = MonitorWorld::generate(&MonitorConfig::default(), 3);
    let schema = world.schema().clone();
    let split = make_mel_split(
        &world.records_for(None),
        "page_title",
        &world.seen_sources(),
        &world.unseen_sources(),
        Scenario::Overlapping,
        &SplitCounts::default(),
        1,
    );

    // Train the full model and read off the learned importance.
    let mut model = AdamelModel::new(AdamelConfig::default(), schema.clone());
    fit(&mut model, Variant::Hyb, &split.train, Some(&split.test), Some(&split.support));
    let full_prauc = evaluate_prauc(&model, &split.test);

    println!("attribute importance learned on the Monitor corpus:");
    for (attr, score) in attribute_importance(&model, &split.test) {
        let bar = "#".repeat((score * 120.0) as usize);
        println!("  {attr:<16} {score:.4} {bar}");
    }

    // Retrain on the top-3 attributes vs the other ten.
    let (top, rest) = top_attribute_schemas(&model, &split.test, &schema, 3);
    println!("\ntop attributes:   {:?}", top.attributes());
    println!("other attributes: {:?}", rest.attributes());

    let mut top_model = AdamelModel::new(AdamelConfig::default(), top);
    fit(&mut top_model, Variant::Hyb, &split.train, Some(&split.test), Some(&split.support));
    let top_prauc = evaluate_prauc(&top_model, &split.test);

    let mut rest_model = AdamelModel::new(AdamelConfig::default(), rest);
    fit(&mut rest_model, Variant::Hyb, &split.train, Some(&split.test), Some(&split.support));
    let rest_prauc = evaluate_prauc(&rest_model, &split.test);

    println!("\nPRAUC with all 13 attributes: {full_prauc:.4}");
    println!("PRAUC with top 3 only:        {top_prauc:.4}");
    println!("PRAUC with the other 10:      {rest_prauc:.4}");
    println!("\nA handful of important attributes carries (almost) all the signal —");
    println!("the paper's 'importance inequality' observation (Table 5).");
}
