//! Incremental knowledge integration: product listings from new sales
//! websites arrive in batches, and the model re-adapts its attribute
//! importance at every step — the paper's §5.5 deployment scenario.
//!
//! ```text
//! cargo run --release -p adamel --example monitor_incremental
//! ```

use adamel::{fit, AdamelConfig, AdamelModel, Variant};
use adamel_data::{monitor_incremental, MonitorConfig, MonitorWorld};
use adamel_metrics::pr_auc;

fn main() {
    // 24 sales websites; the first 5 are curated (labeled) sources.
    let world = MonitorWorld::generate(&MonitorConfig::default(), 3);
    println!(
        "monitor world: {} records across {} websites ({} seen)",
        world.records.len(),
        world.styles.len(),
        world.num_seen
    );

    // Fixed training pairs + support set; target domain grows by 2 websites
    // per step.
    let stream = monitor_incremental(&world, 600, 100, 60, 7, 2, 1);
    println!(
        "stream: {} train pairs, {} support, {} growth steps\n",
        stream.train.len(),
        stream.support.len(),
        stream.steps.len()
    );

    let cfg = AdamelConfig { epochs: 25, ..AdamelConfig::default() };
    println!("{:<10} {:>12} {:>10}", "|D_T*|", "target pairs", "PRAUC");
    for step in &stream.steps {
        // Re-adapt to the grown target domain (the unlabeled pairs
        // themselves drive the KL term — no new labels needed).
        let mut model = AdamelModel::new(cfg.clone(), world.schema().clone());
        fit(&mut model, Variant::Hyb, &stream.train, Some(&step.target), Some(&stream.support));
        let scores = model.predict(&step.target.pairs);
        let labels: Vec<bool> = step.target.pairs.iter().map(|p| p.ground_truth()).collect();
        println!(
            "{:<10} {:>12} {:>10.4}",
            step.num_sources,
            step.target.len(),
            pr_auc(&scores, &labels)
        );
    }
    println!("\nAdaMEL-hyb stays stable as new sources arrive because the attention");
    println!("function f re-adapts to each batch of unlabeled data (paper Fig. 9).");
}
