//! Deployment workflow: train once, persist the model, reload it later and
//! link two raw record collections with blocking — no pre-built pairs.
//!
//! ```text
//! cargo run --release -p adamel --example save_and_link [snapshot-path]
//! ```
//!
//! With a path argument the serialized snapshot is also written to disk,
//! in the format `adamel-serve --model` loads (see OPERATIONS.md).

use adamel::{
    fit, load_model, save_model, AdamelConfig, AdamelModel, Linker, LinkerConfig, Variant,
};
use adamel_data::{make_mel_split, EntityType, MusicConfig, MusicWorld, Scenario, SplitCounts};
use std::io::BufReader;

fn main() {
    // Train AdaMEL-zero on the music world (no labels needed from the new
    // sources — adaptation uses the unlabeled pairs themselves).
    let world = MusicWorld::generate(&MusicConfig::default(), 7);
    let records = world.records_of(EntityType::Album, None);
    let split = make_mel_split(
        &records,
        "name",
        &[0, 1, 2],
        &[3, 4, 5, 6],
        Scenario::Overlapping,
        &SplitCounts::default(),
        1,
    );
    let mut model = AdamelModel::new(AdamelConfig::default(), world.schema().clone());
    fit(&mut model, Variant::Zero, &split.train, Some(&split.test), None);

    // Persist and reload (exact f32 round trip).
    let mut buf = Vec::new();
    save_model(&model, &mut buf).expect("serialize");
    println!("serialized model: {} bytes, {} parameters", buf.len(), model.num_parameters());
    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &buf).expect("write snapshot");
        println!("snapshot written to {path} (servable via adamel-serve --model {path})");
    }
    let restored = load_model(&mut BufReader::new(&buf[..])).expect("deserialize");

    // Link two raw collections: albums from website 4 against website 6.
    let left = world.records_of(EntityType::Album, Some(&[3]));
    let right = world.records_of(EntityType::Album, Some(&[5]));
    let linker = Linker::new(
        restored,
        LinkerConfig { threshold: 0.6, one_to_one: true, ..Default::default() },
    );
    let matches = linker.link(&left, &right);

    // Grade against ground truth (generator entity ids).
    let correct =
        matches.iter().filter(|m| left[m.left].entity_id == right[m.right].entity_id).count();
    println!(
        "linked {} of {} website-4 albums against website-6 ({} correct)",
        matches.len(),
        left.len(),
        correct
    );
    for m in matches.iter().take(5) {
        println!(
            "  {:.3}  {:?}  <->  {:?}",
            m.score,
            left[m.left].get("name").unwrap_or("?"),
            right[m.right].get("name").unwrap_or("?")
        );
    }
}
