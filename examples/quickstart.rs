//! Quickstart: train AdaMEL-hyb on a synthetic multi-source music corpus
//! and link entities from previously unseen websites.
//!
//! ```text
//! cargo run --release -p adamel --example quickstart
//! ```

use adamel::{evaluate_prauc, fit, AdamelConfig, AdamelModel, Variant};
use adamel_data::{make_mel_split, EntityType, MusicConfig, MusicWorld, Scenario, SplitCounts};

fn main() {
    // 1. A world of music entities crawled by 7 websites. Websites 1-3 are
    //    the labeled "seen" sources; 4-7 are unseen and render names
    //    differently, drop values, and carry new attributes (C1-C3).
    let world = MusicWorld::generate(&MusicConfig::default(), 7);
    let records = world.records_of(EntityType::Artist, None);
    println!("world: {} artist records from {} websites", records.len(), world.styles.len());

    // 2. A MEL split: labeled training pairs from the seen websites, a
    //    100-sample labeled support set, and unlabeled target pairs that
    //    touch unseen websites.
    let split = make_mel_split(
        &records,
        "name",
        &[0, 1, 2],
        &[3, 4, 5, 6],
        Scenario::Overlapping,
        &SplitCounts::default(),
        1,
    );
    println!(
        "split: {} train / {} support / {} target pairs",
        split.train.len(),
        split.support.len(),
        split.test.len()
    );

    // 3. Train AdaMEL-hyb: supervised on the train pairs, KL-adapted to the
    //    unlabeled target domain, support-set weighted (Eq. 14).
    let mut model = AdamelModel::new(AdamelConfig::default(), world.schema().clone());
    let report =
        fit(&mut model, Variant::Hyb, &split.train, Some(&split.test), Some(&split.support));
    println!(
        "trained {} epochs, final loss {:.4}, {} parameters",
        report.epochs,
        report.final_loss(),
        model.num_parameters()
    );

    // 4. Score the unseen-source pairs and evaluate.
    let prauc = evaluate_prauc(&model, &split.test);
    println!("PRAUC on unseen-source pairs: {prauc:.4}");

    // 5. Inspect the transferable knowledge: which attributes matter.
    println!("\nlearned feature importance (top 5):");
    for (feature, score) in model.feature_importance(&split.test.pairs).into_iter().take(5) {
        println!("  {feature:<34} {score:.4}");
    }
}
