//! Multi-source music linkage: compares all four AdaMEL variants against a
//! supervised baseline on both evaluation scenarios, for each entity type.
//!
//! This is the workload the paper's introduction motivates: music records
//! from many websites, where unseen websites abbreviate artist names and
//! carry attributes the seen websites never render.
//!
//! ```text
//! cargo run --release -p adamel --example music_linkage
//! ```

use adamel::{evaluate_prauc, fit, AdamelConfig, AdamelModel, Variant};
use adamel_baselines::{
    evaluate_prauc as baseline_prauc, BaselineConfig, CorDel, EntityMatcherModel,
};
use adamel_data::{make_mel_split, EntityType, MusicConfig, MusicWorld, Scenario, SplitCounts};

fn main() {
    let world = MusicWorld::generate(&MusicConfig::default(), 11);

    for etype in EntityType::ALL {
        let records = world.records_of(etype, None);
        println!("\n=== entity type: {} ({} records) ===", etype.name(), records.len());

        for scenario in [Scenario::Overlapping, Scenario::Disjoint] {
            let split = make_mel_split(
                &records,
                "name",
                &[0, 1, 2],
                &[3, 4, 5, 6],
                scenario,
                &SplitCounts::default(),
                1,
            );
            println!("--- scenario: {} ---", scenario.name());

            // Supervised word-level baseline: trains on seen sources only.
            let mut cordel = CorDel::new(world.schema().clone(), BaselineConfig::default());
            cordel.fit(&split.train);
            println!("  {:<14} PRAUC {:.4}", cordel.name(), baseline_prauc(&cordel, &split.test));

            // All four AdaMEL variants.
            for variant in Variant::ALL {
                let mut model = AdamelModel::new(AdamelConfig::default(), world.schema().clone());
                fit(
                    &mut model,
                    variant,
                    &split.train,
                    variant.uses_target().then_some(&split.test),
                    variant.uses_support().then_some(&split.support),
                );
                println!(
                    "  {:<14} PRAUC {:.4}",
                    variant.name(),
                    evaluate_prauc(&model, &split.test)
                );
            }
        }
    }
}
